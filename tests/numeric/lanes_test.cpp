#include "numeric/lanes.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "numeric/lane_matrix.hpp"

namespace vls {
namespace {

// Relative error bound for the Cephes-style kernels: a few ulp, so 1e-14
// leaves generous slack while still catching any coefficient typo.
constexpr double kRelTol = 1e-14;

double relErr(double got, double want) {
  if (want == 0.0) return std::abs(got);
  return std::abs(got - want) / std::abs(want);
}

TEST(Lanes, FastExpMatchesStdExp) {
  // Sweep the range the device models use (junction/softplus arguments
  // land well inside +-700 after clamping).
  for (double x = -690.0; x <= 690.0; x += 0.37) {
    EXPECT_LT(relErr(fastExp(x), std::exp(x)), kRelTol) << "x=" << x;
  }
  // Dense sweep around 0 where softplus lives.
  for (double x = -40.0; x <= 40.0; x += 0.0173) {
    EXPECT_LT(relErr(fastExp(x), std::exp(x)), kRelTol) << "x=" << x;
  }
  EXPECT_DOUBLE_EQ(fastExp(0.0), 1.0);
}

TEST(Lanes, FastExpClampsExtremes) {
  // Beyond +-700 the kernel clamps instead of overflowing to inf / NaN.
  EXPECT_TRUE(std::isfinite(fastExp(1e6)));
  EXPECT_TRUE(std::isfinite(fastExp(-1e6)));
  EXPECT_NEAR(fastExp(-1e6), 0.0, 1e-300);
}

TEST(Lanes, FastLogMatchesStdLog) {
  for (double x = 1e-12; x < 1e12; x *= 1.7) {
    EXPECT_LT(relErr(fastLog(x), std::log(x)), kRelTol) << "x=" << x;
  }
  // Near 1, where log loses absolute magnitude: compare absolutely
  // (a couple of ulp of the result magnitude).
  for (double x = 0.5; x <= 2.0; x += 0.003) {
    EXPECT_NEAR(fastLog(x), std::log(x), 1e-15) << "x=" << x;
  }
  EXPECT_DOUBLE_EQ(fastLog(1.0), 0.0);
}

TEST(Lanes, FastSoftplusMatchesReference) {
  for (double x = -60.0; x <= 60.0; x += 0.11) {
    const SoftplusVD got = fastSoftplus(x);
    // Reference softplus with the same +-40 saturation the scalar
    // device code applies.
    const double xc = x > 40.0 ? 40.0 : (x < -40.0 ? -40.0 : x);
    const double want_v = x > 40.0 ? x : (x < -40.0 ? std::exp(xc) : std::log1p(std::exp(xc)));
    const double want_d =
        x > 40.0 ? 1.0 : (x < -40.0 ? std::exp(xc) : 1.0 / (1.0 + std::exp(-xc)));
    // Deep negative tails lose relative accuracy (the header documents
    // this); absolute error stays physically negligible there.
    EXPECT_NEAR(got.v, want_v, 1e-12 * want_v + 1e-15) << "x=" << x;
    EXPECT_NEAR(got.d, want_d, 1e-12 * want_d + 1e-15) << "x=" << x;
    // Sigmoid is the softplus derivative: monotone, in (0, 1].
    EXPECT_GT(got.d, 0.0);
    EXPECT_LE(got.d, 1.0);
  }
}

TEST(Lanes, FastSigmoidAndTanh) {
  for (double x = -30.0; x <= 30.0; x += 0.21) {
    EXPECT_LT(relErr(fastSigmoid(x), 1.0 / (1.0 + std::exp(-x))), 1e-13) << "x=" << x;
    EXPECT_LT(std::abs(fastTanh(x) - std::tanh(x)), 1e-13) << "x=" << x;
  }
  EXPECT_DOUBLE_EQ(fastTanh(0.0), 0.0);
  EXPECT_NEAR(fastTanh(25.0), 1.0, 1e-15);
  EXPECT_NEAR(fastSigmoid(45.0), 1.0, 1e-15);
  EXPECT_NEAR(fastSigmoid(-45.0), 0.0, 1e-15);
}

TEST(Lanes, LaneMatrixHandleContract) {
  // Same (row, col) always maps to the same handle; values are stored
  // as contiguous double[lanes] runs.
  LaneMatrix m(3, 4);
  const size_t h00 = m.entryHandle(0, 0);
  const size_t h01 = m.entryHandle(0, 1);
  EXPECT_EQ(m.entryHandle(0, 0), h00);
  EXPECT_NE(h00, h01);
  EXPECT_EQ(m.nonZeros(), 2u);

  double* v = m.laneValues(h01);
  for (size_t l = 0; l < 4; ++l) v[l] = 1.0 + static_cast<double>(l);
  for (size_t l = 0; l < 4; ++l) EXPECT_DOUBLE_EQ(m.value(h01, l), 1.0 + static_cast<double>(l));
  for (size_t l = 0; l < 4; ++l) EXPECT_DOUBLE_EQ(m.value(h00, l), 0.0);

  m.clearValues();
  for (size_t l = 0; l < 4; ++l) EXPECT_DOUBLE_EQ(m.value(h01, l), 0.0);
  EXPECT_EQ(m.nonZeros(), 2u);  // pattern survives clearValues
}

}  // namespace
}  // namespace vls
