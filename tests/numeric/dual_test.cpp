#include "numeric/dual.hpp"

#include <gtest/gtest.h>

namespace vls {
namespace {

using D2 = Dual<2>;

// Finite-difference reference for a single-variable function.
template <typename F>
double fdiff(F f, double x, double h = 1e-7) {
  return (f(x + h) - f(x - h)) / (2.0 * h);
}

TEST(Dual, SeedAndArithmetic) {
  const D2 x = D2::seed(3.0, 0);
  const D2 y = D2::seed(4.0, 1);
  const D2 z = x * y + x - y / x;
  EXPECT_DOUBLE_EQ(z.v, 12.0 + 3.0 - 4.0 / 3.0);
  // dz/dx = y + 1 + y/x^2 = 4 + 1 + 4/9
  EXPECT_NEAR(z.d[0], 5.0 + 4.0 / 9.0, 1e-12);
  // dz/dy = x - 1/x = 3 - 1/3
  EXPECT_NEAR(z.d[1], 3.0 - 1.0 / 3.0, 1e-12);
}

TEST(Dual, ChainedTranscendentals) {
  const double x0 = 0.7;
  auto f = [](auto x) { return exp(sqrt(x) * 2.0) + log(x + 1.0); };
  const auto z = f(Dual<1>::seed(x0, 0));
  EXPECT_NEAR(z.d[0], fdiff([&](double x) { return f(Dual<1>(x)).v; }, x0), 1e-6);
}

TEST(Dual, Log1p) {
  const auto z = log1p(Dual<1>::seed(0.5, 0));
  EXPECT_DOUBLE_EQ(z.v, std::log1p(0.5));
  EXPECT_NEAR(z.d[0], 1.0 / 1.5, 1e-12);
}

TEST(Dual, SoftplusRegions) {
  // Deep negative: value ~ e^x, derivative ~ e^x.
  const auto lo = softplus(Dual<1>::seed(-50.0, 0));
  EXPECT_NEAR(lo.v, std::exp(-50.0), 1e-30);
  EXPECT_NEAR(lo.d[0], std::exp(-50.0), 1e-30);
  // Deep positive: value ~ x, derivative ~ 1.
  const auto hi = softplus(Dual<1>::seed(50.0, 0));
  EXPECT_DOUBLE_EQ(hi.v, 50.0);
  EXPECT_DOUBLE_EQ(hi.d[0], 1.0);
  // Middle: matches log1p(exp(x)).
  const auto mid = softplus(Dual<1>::seed(0.3, 0));
  EXPECT_NEAR(mid.v, std::log1p(std::exp(0.3)), 1e-14);
  EXPECT_NEAR(mid.d[0], 1.0 / (1.0 + std::exp(-0.3)), 1e-12);
}

TEST(Dual, SoftplusDoubleOverloadMatches) {
  for (double x : {-60.0, -3.0, 0.0, 2.5, 60.0}) {
    EXPECT_DOUBLE_EQ(softplus(x), softplus(Dual<1>(x)).v);
  }
}

TEST(Dual, UnaryMinusAndComparisons) {
  const D2 x = D2::seed(2.0, 0);
  const D2 y = -x;
  EXPECT_DOUBLE_EQ(y.v, -2.0);
  EXPECT_DOUBLE_EQ(y.d[0], -1.0);
  EXPECT_TRUE(y < x);
  EXPECT_TRUE(x > y);
}

TEST(Dual, SqrtAtZeroHasFiniteDerivative) {
  // Guard against division by zero: derivative defined as 0 at x = 0.
  const auto z = sqrt(Dual<1>::seed(0.0, 0));
  EXPECT_DOUBLE_EQ(z.v, 0.0);
  EXPECT_DOUBLE_EQ(z.d[0], 0.0);
}

}  // namespace
}  // namespace vls
