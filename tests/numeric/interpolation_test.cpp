#include "numeric/interpolation.hpp"

#include <gtest/gtest.h>

#include "base/error.hpp"

namespace vls {
namespace {

const std::vector<double> kT = {0.0, 1.0, 2.0, 3.0};
const std::vector<double> kV = {0.0, 1.0, 1.0, 0.0};

TEST(Interp, LinearInside) {
  EXPECT_DOUBLE_EQ(interpLinear(kT, kV, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(interpLinear(kT, kV, 1.5), 1.0);
  EXPECT_DOUBLE_EQ(interpLinear(kT, kV, 2.75), 0.25);
}

TEST(Interp, ClampsOutside) {
  EXPECT_DOUBLE_EQ(interpLinear(kT, kV, -5.0), 0.0);
  EXPECT_DOUBLE_EQ(interpLinear(kT, kV, 99.0), 0.0);
}

TEST(Interp, MismatchedThrows) {
  EXPECT_THROW(interpLinear({0.0}, {}, 0.0), InvalidInputError);
  EXPECT_THROW(interpLinear({}, {}, 0.0), InvalidInputError);
}

TEST(Crossing, RisingAndFalling) {
  const auto rise = firstCrossing(kT, kV, 0.5, CrossDir::Rising);
  ASSERT_TRUE(rise);
  EXPECT_DOUBLE_EQ(*rise, 0.5);
  const auto fall = firstCrossing(kT, kV, 0.5, CrossDir::Falling);
  ASSERT_TRUE(fall);
  EXPECT_DOUBLE_EQ(*fall, 2.5);
}

TEST(Crossing, FromOffsetSkipsEarlier) {
  const auto c = firstCrossing(kT, kV, 0.5, CrossDir::Either, 1.0);
  ASSERT_TRUE(c);
  EXPECT_DOUBLE_EQ(*c, 2.5);
}

TEST(Crossing, NoneFound) {
  EXPECT_FALSE(firstCrossing(kT, kV, 2.0, CrossDir::Rising).has_value());
  EXPECT_FALSE(firstCrossing(kT, kV, 0.5, CrossDir::Rising, 1.5).has_value());
}

TEST(Crossing, AllCrossings) {
  const std::vector<double> t = {0, 1, 2, 3, 4};
  const std::vector<double> v = {0, 1, 0, 1, 0};
  const auto rises = allCrossings(t, v, 0.5, CrossDir::Rising);
  ASSERT_EQ(rises.size(), 2u);
  EXPECT_DOUBLE_EQ(rises[0], 0.5);
  EXPECT_DOUBLE_EQ(rises[1], 2.5);
  const auto all = allCrossings(t, v, 0.5, CrossDir::Either);
  EXPECT_EQ(all.size(), 4u);
}

TEST(Crossing, ExactlyAtLevelCounts) {
  // Segment ends exactly on the level: counted once (>= level).
  const std::vector<double> t = {0, 1, 2};
  const std::vector<double> v = {0, 0.5, 1.0};
  const auto c = firstCrossing(t, v, 0.5, CrossDir::Rising);
  ASSERT_TRUE(c);
  EXPECT_DOUBLE_EQ(*c, 1.0);
}

TEST(Integrate, TriangleArea) {
  EXPECT_NEAR(integrateTrapezoid(kT, kV, 0.0, 3.0), 2.0, 1e-12);
  EXPECT_NEAR(integrateTrapezoid(kT, kV, 1.0, 2.0), 1.0, 1e-12);
  EXPECT_NEAR(integrateTrapezoid(kT, kV, 0.0, 0.5), 0.125, 1e-12);
}

TEST(Integrate, WindowBeyondDomainExtendsWithEndValues) {
  const std::vector<double> t = {0.0, 1.0};
  const std::vector<double> v = {2.0, 2.0};
  EXPECT_NEAR(integrateTrapezoid(t, v, 0.0, 3.0), 2.0 + 2.0 * 2.0, 1e-12);
}

TEST(Integrate, EmptyWindowIsZero) {
  EXPECT_DOUBLE_EQ(integrateTrapezoid(kT, kV, 2.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(integrateTrapezoid(kT, kV, 3.0, 1.0), 0.0);
}

}  // namespace
}  // namespace vls
