#include "numeric/lu_ensemble.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "numeric/lu_sparse.hpp"
#include "numeric/rng.hpp"

namespace vls {
namespace {

// Build a diagonally-weighted random sparse pattern shared by all lanes,
// with independent per-lane values, plus a per-lane SparseMatrix copy
// for the scalar reference.
struct LaneProblem {
  LaneMatrix lanes;
  std::vector<SparseMatrix> scalar;

  LaneProblem(size_t n, size_t k, Rng& rng) : lanes(n, k), scalar(k, SparseMatrix(n)) {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        const bool diag = i == j;
        if (!diag && rng.uniform() > 0.3) continue;
        const size_t h = lanes.entryHandle(i, j);
        double* v = lanes.laneValues(h);
        for (size_t l = 0; l < k; ++l) {
          const double val = rng.uniform(-1.0, 1.0) + (diag ? 4.0 : 0.0);
          v[l] = val;
          scalar[l].add(i, j, val);
        }
      }
    }
  }
};

TEST(EnsembleLu, MatchesScalarSparseLuPerLane) {
  Rng rng(42);
  const size_t n = 12, k = 4;
  LaneProblem p(n, k, rng);

  EnsembleLu lu;
  std::vector<uint8_t> ok(k, 0);
  lu.analyze(p.lanes, 0, 1e-13, nullptr, ok.data());
  for (size_t l = 0; l < k; ++l) ASSERT_EQ(ok[l], 1) << "lane " << l;

  // One shared SoA rhs; each lane gets a distinct vector.
  std::vector<double> b(n * k);
  for (size_t i = 0; i < n; ++i)
    for (size_t l = 0; l < k; ++l) b[i * k + l] = rng.uniform(-2.0, 2.0);
  std::vector<double> x = b;
  lu.solveInPlace(x);

  for (size_t l = 0; l < k; ++l) {
    std::vector<double> bl(n);
    for (size_t i = 0; i < n; ++i) bl[i] = b[i * k + l];
    const std::vector<double> ref = SparseLu(p.scalar[l]).solve(bl);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[i * k + l], ref[i], 1e-10) << "lane " << l << " row " << i;
    }
  }
}

TEST(EnsembleLu, RefactorReusesSymbolicStructure) {
  Rng rng(7);
  const size_t n = 10, k = 3;
  LaneProblem p(n, k, rng);

  EnsembleLu lu;
  lu.analyze(p.lanes);
  const size_t symbolic_after_analyze = lu.symbolicFactorizations();

  // New values, same pattern: refactor must not re-run the symbolic
  // phase, and solutions must track the new values.
  for (size_t h = 0; h < p.lanes.nonZeros(); ++h) {
    double* v = p.lanes.laneValues(h);
    const auto& e = p.lanes.entries()[h];
    for (size_t l = 0; l < k; ++l) {
      v[l] = rng.uniform(-1.0, 1.0) + (e.row == e.col ? 5.0 : 0.0);
      // Keep the scalar copies in sync for the reference solve.
      p.scalar[l].setAt(p.scalar[l].entryHandle(e.row, e.col), v[l]);
    }
  }
  std::vector<uint8_t> ok(k, 0);
  lu.refactor(p.lanes, nullptr, ok.data());
  for (size_t l = 0; l < k; ++l) ASSERT_EQ(ok[l], 1);
  EXPECT_EQ(lu.symbolicFactorizations(), symbolic_after_analyze);

  std::vector<double> b(n * k, 1.0);
  std::vector<double> x = b;
  lu.solveInPlace(x);
  for (size_t l = 0; l < k; ++l) {
    const std::vector<double> ref = SparseLu(p.scalar[l]).solve(std::vector<double>(n, 1.0));
    for (size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i * k + l], ref[i], 1e-10);
  }
}

TEST(EnsembleLu, DeadLanesAreLeftUntouched) {
  Rng rng(11);
  const size_t n = 6, k = 3;
  LaneProblem p(n, k, rng);

  EnsembleLu lu;
  lu.analyze(p.lanes);
  std::vector<uint8_t> live = {1, 0, 1};  // lane 1 is dead
  std::vector<uint8_t> ok(k, 0);
  lu.refactor(p.lanes, live.data(), ok.data());
  EXPECT_EQ(ok[0], 1);
  EXPECT_EQ(ok[2], 1);

  std::vector<double> b(n * k);
  for (size_t i = 0; i < n; ++i)
    for (size_t l = 0; l < k; ++l) b[i * k + l] = static_cast<double>(i + 10 * l);
  std::vector<double> x = b;
  lu.solveInPlace(x, live.data());
  // Dead lane's slots keep their input values verbatim.
  for (size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(x[i * k + 1], b[i * k + 1]);
  // Live lanes actually solved (values moved and match the reference).
  for (size_t l : {size_t{0}, size_t{2}}) {
    std::vector<double> bl(n);
    for (size_t i = 0; i < n; ++i) bl[i] = b[i * k + l];
    const std::vector<double> ref = SparseLu(p.scalar[l]).solve(bl);
    for (size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i * k + l], ref[i], 1e-10);
  }
}

TEST(EnsembleLu, PerLanePivotFailureFlagsOnlyThatLane) {
  // Lane 1's matrix is exactly singular (a zero row); the shared pivot
  // order comes from lane 0. Lane 1 must be flagged, lane 0 must solve.
  LaneMatrix m(2, 2);
  const size_t h00 = m.entryHandle(0, 0);
  const size_t h01 = m.entryHandle(0, 1);
  const size_t h10 = m.entryHandle(1, 0);
  const size_t h11 = m.entryHandle(1, 1);
  auto set = [&](size_t h, double lane0, double lane1) {
    m.laneValues(h)[0] = lane0;
    m.laneValues(h)[1] = lane1;
  };
  set(h00, 2.0, 0.0);
  set(h01, 1.0, 0.0);
  set(h10, 1.0, 1.0);
  set(h11, 3.0, 1.0);

  EnsembleLu lu;
  std::vector<uint8_t> ok(2, 0);
  lu.analyze(m, 0, 1e-13, nullptr, ok.data());
  EXPECT_EQ(ok[0], 1);
  EXPECT_EQ(ok[1], 0);

  std::vector<double> b = {5.0, 0.0, 5.0, 0.0};  // SoA: rows {5,5} lane 0
  std::vector<uint8_t> live = {1, 0};
  lu.solveInPlace(b, live.data());
  // Lane 0: [[2,1],[1,3]] x = [5,5] => x = [2,1].
  EXPECT_NEAR(b[0 * 2 + 0], 2.0, 1e-12);
  EXPECT_NEAR(b[1 * 2 + 0], 1.0, 1e-12);
}

TEST(EnsembleLu, LaneSingularColumnIdentifiesCollapsedPivot) {
  // Lane 1's first column is all zeros; lane 0 is healthy. The per-lane
  // report must name column 0 for lane 1 and stay clean for lane 0.
  LaneMatrix m(2, 2);
  const size_t h00 = m.entryHandle(0, 0);
  const size_t h01 = m.entryHandle(0, 1);
  const size_t h10 = m.entryHandle(1, 0);
  const size_t h11 = m.entryHandle(1, 1);
  auto set = [&](size_t h, double lane0, double lane1) {
    m.laneValues(h)[0] = lane0;
    m.laneValues(h)[1] = lane1;
  };
  set(h00, 2.0, 0.0);
  set(h01, 1.0, 1.0);
  set(h10, 0.0, 0.0);
  set(h11, 3.0, 1.0);

  EnsembleLu lu;
  std::vector<uint8_t> ok(2, 0);
  lu.analyze(m, 0, 1e-13, nullptr, ok.data());
  EXPECT_EQ(ok[0], 1);
  EXPECT_EQ(ok[1], 0);
  EXPECT_EQ(lu.laneSingularColumn(0), -1);
  EXPECT_EQ(lu.laneSingularColumn(1), 0);
}

}  // namespace
}  // namespace vls
