#include "numeric/qmc.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "base/error.hpp"
#include "numeric/rng.hpp"
#include "numeric/statistics.hpp"

namespace vls {
namespace {

TEST(InverseNormalCdf, KnownValues) {
  EXPECT_DOUBLE_EQ(inverseNormalCdf(0.5), 0.0);
  // Quantiles every table lists: symmetric and accurate to ~1e-9.
  EXPECT_NEAR(inverseNormalCdf(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(inverseNormalCdf(0.025), -1.959963985, 1e-6);
  EXPECT_NEAR(inverseNormalCdf(0.841344746), 1.0, 1e-6);
  EXPECT_NEAR(inverseNormalCdf(0.998650102), 3.0, 1e-5);
}

TEST(InverseNormalCdf, RoundTripsThroughForwardCdf) {
  auto cdf = [](double x) { return 0.5 * std::erfc(-x * M_SQRT1_2); };
  for (double p = 1e-12; p < 1.0; p = p < 0.01 ? p * 10 : p + 0.01) {
    const double x = inverseNormalCdf(p);
    EXPECT_NEAR(cdf(x), p, 1e-12 + 1e-9 * p) << "p=" << p;
  }
}

TEST(InverseNormalCdf, MonotoneAndSymmetric) {
  double prev = -HUGE_VAL;
  for (double p = 0.001; p < 1.0; p += 0.001) {
    const double x = inverseNormalCdf(p);
    EXPECT_GT(x, prev);
    EXPECT_NEAR(x, -inverseNormalCdf(1.0 - p), 1e-9);
    prev = x;
  }
  EXPECT_EQ(inverseNormalCdf(0.0), -HUGE_VAL);
  EXPECT_EQ(inverseNormalCdf(1.0), HUGE_VAL);
}

TEST(Sobol, UnscrambledFirstDimensionIsVanDerCorput) {
  const SobolSequence seq(2, 0, /*scramble=*/false);
  // The Gray-code construction emits the van der Corput set permuted:
  // point(i) is the base-2 radical inverse of gray(i) = i ^ (i >> 1),
  // plus the 2^-33 digital centering offset.
  const double c = 0x1.0p-33;
  for (uint64_t i = 0; i < 64; ++i) {
    uint64_t g = i ^ (i >> 1);
    double expected = 0.0;
    for (int bit = 0; g != 0; ++bit, g >>= 1) {
      if (g & 1u) expected += std::ldexp(1.0, -(bit + 1));
    }
    EXPECT_NEAR(seq.point(i)[0], expected + c, 1e-15) << "index " << i;
  }
}

TEST(Sobol, FirstBlockIsStratified) {
  // Any power-of-two prefix of a Sobol sequence puts exactly one point
  // in each of the 2^k equal slices of every dimension (the digital-net
  // property, preserved by linear scrambling).
  const unsigned dims = 12;
  const SobolSequence seq(dims, 12345);
  const uint64_t n = 256;
  for (unsigned d = 0; d < dims; ++d) {
    std::vector<int> slice(n, 0);
    for (uint64_t i = 0; i < n; ++i) {
      const double x = seq.point(i)[d];
      ASSERT_GT(x, 0.0);
      ASSERT_LT(x, 1.0);
      ++slice[static_cast<size_t>(x * static_cast<double>(n))];
    }
    for (uint64_t s = 0; s < n; ++s) {
      ASSERT_EQ(slice[s], 1) << "dim " << d << " slice " << s;
    }
  }
}

TEST(Sobol, DeterministicAndSeedSensitive) {
  const SobolSequence a(8, 99), b(8, 99), c(8, 100);
  bool any_differ = false;
  for (uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(a.point(i), b.point(i));
    if (a.point(i) != c.point(i)) any_differ = true;
  }
  EXPECT_TRUE(any_differ) << "scramble seed had no effect";
}

TEST(Sobol, RejectsBadDimsAndIndex) {
  EXPECT_THROW(SobolSequence(0), InvalidInputError);
  EXPECT_THROW(SobolSequence(SobolSequence::kMaxDims + 1), InvalidInputError);
  const SobolSequence seq(2);
  EXPECT_THROW(seq.point(uint64_t{1} << 32), InvalidInputError);
}

TEST(LatinHypercube, EveryStratumHitExactlyOnce) {
  for (const uint64_t n : {uint64_t{1}, uint64_t{13}, uint64_t{64}, uint64_t{1000}}) {
    const LatinHypercube lhs(5, n, 4242);
    for (unsigned d = 0; d < 5; ++d) {
      std::vector<int> hits(n, 0);
      for (uint64_t i = 0; i < n; ++i) {
        const double x = lhs.point(i)[d];
        ASSERT_GT(x, 0.0);
        ASSERT_LT(x, 1.0);
        ++hits[static_cast<size_t>(x * static_cast<double>(n))];
      }
      for (uint64_t s = 0; s < n; ++s) ASSERT_EQ(hits[s], 1) << "n " << n << " dim " << d;
    }
  }
}

TEST(LatinHypercube, IndexAddressableAndSeedSensitive) {
  const LatinHypercube a(3, 100, 7), b(3, 100, 7), c(3, 100, 8);
  bool any_differ = false;
  for (uint64_t i : {uint64_t{0}, uint64_t{42}, uint64_t{99}}) {
    EXPECT_EQ(a.point(i), b.point(i));
    if (a.point(i) != c.point(i)) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
  EXPECT_THROW(a.point(100), InvalidInputError);
  EXPECT_THROW(LatinHypercube(0, 10, 1), InvalidInputError);
  EXPECT_THROW(LatinHypercube(3, 0, 1), InvalidInputError);
}

// The point of QMC: estimating a smooth expectation converges with far
// smaller replicate-to-replicate variance than pseudo-random sampling.
TEST(Qmc, VarianceReductionOnSmoothIntegrand) {
  const unsigned dims = 6;
  const uint64_t n = 1024;
  const int reps = 8;
  // E[f] over N(0,1)^6 draws mapped from the unit cube; f is a smooth
  // product, the kind of response surface Monte-Carlo metrics follow.
  auto f = [&](const std::vector<double>& u) {
    double v = 1.0;
    for (const double ui : u) v *= 1.0 + 0.1 * inverseNormalCdf(ui);
    return v;
  };
  OnlineStats pseudo, lhs, sobol;
  for (int r = 0; r < reps; ++r) {
    const uint64_t seed = 1000 + 17u * static_cast<uint64_t>(r);
    Rng rng(seed);
    double acc = 0.0;
    std::vector<double> u(dims);
    for (uint64_t i = 0; i < n; ++i) {
      for (auto& ui : u) ui = std::clamp(rng.uniform(), 1e-12, 1.0 - 1e-12);
      acc += f(u);
    }
    pseudo.add(acc / static_cast<double>(n));

    const LatinHypercube gen_lhs(dims, n, seed);
    acc = 0.0;
    for (uint64_t i = 0; i < n; ++i) acc += f(gen_lhs.point(i));
    lhs.add(acc / static_cast<double>(n));

    const SobolSequence gen_sobol(dims, seed);
    acc = 0.0;
    for (uint64_t i = 0; i < n; ++i) acc += f(gen_sobol.point(i));
    sobol.add(acc / static_cast<double>(n));
  }
  // All three estimate E[f] = 1; low-discrepancy replicate variance
  // should be at least an order of magnitude below pseudo-random.
  EXPECT_NEAR(pseudo.mean(), 1.0, 0.05);
  EXPECT_NEAR(lhs.mean(), 1.0, 0.01);
  EXPECT_NEAR(sobol.mean(), 1.0, 0.01);
  EXPECT_LT(lhs.variance(), pseudo.variance() / 10.0);
  EXPECT_LT(sobol.variance(), pseudo.variance() / 10.0);
}

}  // namespace
}  // namespace vls
