#include "numeric/lu_bbd.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "base/error.hpp"
#include "numeric/lu_sparse.hpp"
#include "numeric/rng.hpp"

namespace vls {
namespace {

// Block-chain system: `blocks` diagonal blocks of `bs` unknowns each,
// coupled through one border unknown between consecutive blocks. Block
// interiors are random diagonally dominant; couplings tie the last
// unknown of block k and the first of block k+1 to border k.
struct ChainSystem {
  SparseMatrix a{0};
  std::vector<int32_t> partition;
  int32_t num_blocks = 0;
  size_t n = 0;
};

ChainSystem makeChain(int blocks, int bs, uint64_t seed) {
  ChainSystem sys;
  sys.num_blocks = blocks;
  const int border = blocks - 1;
  sys.n = static_cast<size_t>(blocks * bs + border);
  sys.a = SparseMatrix(sys.n);
  sys.partition.assign(sys.n, -1);
  Rng rng(seed);
  const auto blockBase = [bs](int b) { return static_cast<size_t>(b * bs); };
  const size_t border_base = static_cast<size_t>(blocks * bs);
  for (int b = 0; b < blocks; ++b) {
    for (int i = 0; i < bs; ++i) {
      const size_t u = blockBase(b) + i;
      sys.partition[u] = b;
      sys.a.add(u, u, 4.0 + rng.uniform());
      if (i > 0) {
        sys.a.add(u, u - 1, rng.uniform(-1, 1));
        sys.a.add(u - 1, u, rng.uniform(-1, 1));
      }
    }
  }
  for (int k = 0; k < border; ++k) {
    const size_t w = border_base + k;
    sys.a.add(w, w, 4.0 + rng.uniform());
    const size_t left = blockBase(k) + bs - 1;    // last unknown of block k
    const size_t right = blockBase(k + 1);        // first unknown of block k+1
    sys.a.add(w, left, rng.uniform(-1, 1));
    sys.a.add(left, w, rng.uniform(-1, 1));
    sys.a.add(w, right, rng.uniform(-1, 1));
    sys.a.add(right, w, rng.uniform(-1, 1));
  }
  return sys;
}

TEST(BbdLu, MatchesFlatSolve) {
  ChainSystem sys = makeChain(4, 6, 11);
  BbdLu bbd(sys.partition, sys.num_blocks);
  bbd.factor(sys.a);
  EXPECT_EQ(bbd.blockCount(), 4u);
  EXPECT_EQ(bbd.borderSize(), 3u);

  Rng rng(12);
  std::vector<double> b(sys.n);
  for (double& v : b) v = rng.uniform(-2, 2);
  const auto x_bbd = bbd.solve(b);
  const auto x_flat = SparseLu(sys.a).solve(b);
  for (size_t i = 0; i < sys.n; ++i) EXPECT_NEAR(x_bbd[i], x_flat[i], 1e-10);
}

TEST(BbdLu, RefactorTracksNewValues) {
  ChainSystem sys = makeChain(3, 5, 21);
  BbdLu bbd(sys.partition, sys.num_blocks);
  bbd.factor(sys.a);
  Rng rng(22);
  for (int round = 0; round < 3; ++round) {
    for (size_t h = 0; h < sys.a.entries().size(); ++h) {
      const bool diag = sys.a.entries()[h].row == sys.a.entries()[h].col;
      sys.a.setAt(h, rng.uniform(-1, 1) + (diag ? 4.0 : 0.0));
    }
    bbd.refactor(sys.a);
    std::vector<double> b(sys.n);
    for (double& v : b) v = rng.uniform(-2, 2);
    const auto x_bbd = bbd.solve(b);
    const auto x_flat = SparseLu(sys.a).solve(b);
    for (size_t i = 0; i < sys.n; ++i) EXPECT_NEAR(x_bbd[i], x_flat[i], 1e-10);
  }
}

TEST(BbdLu, LatencySkipsUnchangedBlocks) {
  ChainSystem sys = makeChain(4, 6, 31);
  BbdLu bbd(sys.partition, sys.num_blocks);
  bbd.factor(sys.a);
  const size_t after_factor = bbd.blockRefactors();
  EXPECT_EQ(after_factor, 4u);  // every block factored once

  // Touch only block 2's interior: the other three must skip.
  for (size_t h = 0; h < sys.a.entries().size(); ++h) {
    const auto& e = sys.a.entries()[h];
    if (e.row == e.col && sys.partition[e.row] == 2) sys.a.setAt(h, sys.a.value(h) + 0.5);
  }
  bbd.refactor(sys.a);
  EXPECT_EQ(bbd.blockRefactors(), after_factor + 1);
  EXPECT_EQ(bbd.blockRefactorsSkipped(), 3u);
  // Unchanged values everywhere: all four skip.
  bbd.refactor(sys.a);
  EXPECT_EQ(bbd.blockRefactors(), after_factor + 1);
  EXPECT_EQ(bbd.blockRefactorsSkipped(), 7u);
  // Solutions stay exact after skips.
  std::vector<double> b(sys.n, 1.0);
  const auto x_bbd = bbd.solve(b);
  const auto x_flat = SparseLu(sys.a).solve(b);
  for (size_t i = 0; i < sys.n; ++i) EXPECT_NEAR(x_bbd[i], x_flat[i], 1e-10);
}

TEST(BbdLu, LatencyDisabledAlwaysRefactors) {
  ChainSystem sys = makeChain(3, 4, 41);
  BbdLu bbd(sys.partition, sys.num_blocks, LuOrdering::MinDegree, /*latency=*/false);
  bbd.factor(sys.a);
  bbd.refactor(sys.a);
  EXPECT_EQ(bbd.blockRefactors(), 6u);
  EXPECT_EQ(bbd.blockRefactorsSkipped(), 0u);
}

TEST(BbdLu, SingularBlockReportsGlobalColumn) {
  ChainSystem sys = makeChain(3, 4, 51);
  // Zero every entry in global column 6 (block 1's interior).
  for (size_t h = 0; h < sys.a.entries().size(); ++h) {
    if (sys.a.entries()[h].col == 6) sys.a.setAt(h, 0.0);
  }
  BbdLu bbd(sys.partition, sys.num_blocks);
  EXPECT_THROW(bbd.factor(sys.a), NumericalError);
  EXPECT_EQ(bbd.lastSingularColumn(), 6);
}

TEST(BbdLu, SingularBorderReportsGlobalColumn) {
  ChainSystem sys = makeChain(3, 4, 61);
  const size_t border0 = static_cast<size_t>(3 * 4);  // first border unknown
  for (size_t h = 0; h < sys.a.entries().size(); ++h) {
    if (sys.a.entries()[h].col == border0) sys.a.setAt(h, 0.0);
  }
  BbdLu bbd(sys.partition, sys.num_blocks);
  EXPECT_THROW(bbd.factor(sys.a), NumericalError);
  EXPECT_EQ(bbd.lastSingularColumn(), static_cast<int>(border0));
}

TEST(BbdLu, RejectsDirectBlockToBlockCoupling) {
  ChainSystem sys = makeChain(2, 3, 71);
  sys.a.add(0, 3, 1.0);  // block 0 interior -> block 1 interior
  BbdLu bbd(sys.partition, sys.num_blocks);
  EXPECT_THROW(bbd.factor(sys.a), InvalidInputError);
}

TEST(BbdLu, RejectsBadPartitionLabels) {
  EXPECT_THROW(BbdLu({0, 1, 7}, 2), InvalidInputError);
  EXPECT_THROW(BbdLu({0, -2}, 1), InvalidInputError);
  ChainSystem sys = makeChain(2, 3, 81);
  BbdLu wrong_size(std::vector<int32_t>(3, 0), 1);
  EXPECT_THROW(wrong_size.factor(sys.a), InvalidInputError);
}

TEST(BbdLu, PatternChangeRefactorsFromScratch) {
  ChainSystem sys = makeChain(2, 3, 91);
  BbdLu bbd(sys.partition, sys.num_blocks);
  bbd.factor(sys.a);
  sys.a.add(1, 2, 0.25);  // new interior entry: pattern change
  bbd.refactor(sys.a);
  std::vector<double> b(sys.n, 1.0);
  const auto x_bbd = bbd.solve(b);
  const auto x_flat = SparseLu(sys.a).solve(b);
  for (size_t i = 0; i < sys.n; ++i) EXPECT_NEAR(x_bbd[i], x_flat[i], 1e-10);
}

TEST(BbdLu, AllBorderDegeneratesToFlat) {
  // Everything on the border: the Schur complement IS the matrix.
  ChainSystem sys = makeChain(2, 3, 101);
  std::vector<int32_t> all_border(sys.n, -1);
  BbdLu bbd(all_border, 1);
  bbd.factor(sys.a);
  EXPECT_EQ(bbd.borderSize(), sys.n);
  std::vector<double> b(sys.n, 1.0);
  const auto x_bbd = bbd.solve(b);
  const auto x_flat = SparseLu(sys.a).solve(b);
  for (size_t i = 0; i < sys.n; ++i) EXPECT_NEAR(x_bbd[i], x_flat[i], 1e-10);
}

}  // namespace
}  // namespace vls
