#include "numeric/lu_dense.hpp"

#include <gtest/gtest.h>

#include "base/error.hpp"
#include "numeric/rng.hpp"

namespace vls {
namespace {

TEST(DenseMatrix, BasicOps) {
  DenseMatrix a(2, 3);
  a(0, 0) = 1;
  a(0, 2) = 2;
  a(1, 1) = -3;
  EXPECT_EQ(a.rows(), 2u);
  EXPECT_EQ(a.cols(), 3u);
  EXPECT_DOUBLE_EQ(a.maxAbs(), 3.0);

  const auto y = a.multiply(std::vector<double>{1.0, 1.0, 1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], -3.0);

  const DenseMatrix at = a.transposed();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_DOUBLE_EQ(at(2, 0), 2.0);
}

TEST(DenseMatrix, MatrixProductAgainstIdentity) {
  DenseMatrix a(3, 3);
  Rng rng(7);
  for (size_t r = 0; r < 3; ++r)
    for (size_t c = 0; c < 3; ++c) a(r, c) = rng.uniform(-1, 1);
  const DenseMatrix prod = a.multiply(DenseMatrix::identity(3));
  for (size_t r = 0; r < 3; ++r)
    for (size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(prod(r, c), a(r, c));
}

TEST(DenseLu, SolvesSmallSystem) {
  DenseMatrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  DenseLu lu(a);
  const auto x = lu.solve({5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(DenseLu, RequiresPivoting) {
  // Zero on the diagonal: fails without partial pivoting.
  DenseMatrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  DenseLu lu(a);
  const auto x = lu.solve({2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(DenseLu, Determinant) {
  DenseMatrix a(2, 2);
  a(0, 0) = 3;
  a(0, 1) = 1;
  a(1, 0) = 2;
  a(1, 1) = 2;
  EXPECT_NEAR(DenseLu(a).determinant(), 4.0, 1e-12);
}

TEST(DenseLu, ThrowsOnSingular) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_THROW(DenseLu lu(a), NumericalError);
}

TEST(DenseLu, ThrowsOnNonSquare) {
  EXPECT_THROW(DenseLu lu(DenseMatrix(2, 3)), InvalidInputError);
}

class DenseLuRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(DenseLuRandomTest, RandomSystemsRoundTrip) {
  const int n = GetParam();
  Rng rng(1000 + n);
  DenseMatrix a(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) a(r, c) = rng.uniform(-1, 1);
    a(r, r) += 2.0;  // diagonally dominant-ish: well-conditioned
  }
  std::vector<double> x_true(n);
  for (double& v : x_true) v = rng.uniform(-5, 5);
  const auto b = a.multiply(x_true);
  const auto x = DenseLu(a).solve(b);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, DenseLuRandomTest, ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55));

}  // namespace
}  // namespace vls
