#include "numeric/lu_sparse.hpp"

#include <gtest/gtest.h>

#include "base/error.hpp"
#include "numeric/lu_dense.hpp"
#include "numeric/rng.hpp"

namespace vls {
namespace {

TEST(SparseMatrix, HandlesAccumulate) {
  SparseMatrix m(3);
  const size_t h = m.entryHandle(1, 2);
  m.addAt(h, 2.0);
  m.addAt(h, 3.0);
  EXPECT_DOUBLE_EQ(m.at(h), 5.0);
  EXPECT_EQ(m.entryHandle(1, 2), h);  // stable handle
  EXPECT_EQ(m.nonZeros(), 1u);
  m.clearValues();
  EXPECT_DOUBLE_EQ(m.at(h), 0.0);
  EXPECT_EQ(m.nonZeros(), 1u);  // pattern survives
}

TEST(SparseMatrix, MultiplyMatchesDense) {
  SparseMatrix m(3);
  m.add(0, 0, 2.0);
  m.add(0, 2, 1.0);
  m.add(2, 1, -1.0);
  const auto y = m.multiply({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], -2.0);
}

TEST(SparseMatrix, OutOfRangeThrows) {
  SparseMatrix m(2);
  EXPECT_THROW(m.entryHandle(2, 0), InvalidInputError);
}

TEST(SparseLu, SolvesDiagonal) {
  SparseMatrix m(3);
  m.add(0, 0, 2.0);
  m.add(1, 1, 4.0);
  m.add(2, 2, 8.0);
  const auto x = SparseLu(m).solve({2.0, 4.0, 8.0});
  for (double v : x) EXPECT_NEAR(v, 1.0, 1e-14);
}

TEST(SparseLu, PivotsZeroDiagonal) {
  // [[0 1],[1 0]] x = [2 3] -> x = [3 2]
  SparseMatrix m(2);
  m.add(0, 1, 1.0);
  m.add(1, 0, 1.0);
  const auto x = SparseLu(m).solve({2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
}

TEST(SparseLu, SingularThrows) {
  SparseMatrix m(2);
  m.add(0, 0, 1.0);
  m.add(0, 1, 2.0);
  m.add(1, 0, 0.5);
  m.add(1, 1, 1.0);
  EXPECT_THROW(SparseLu lu(m), NumericalError);
}

TEST(SparseLu, DuplicateStampsCollapse) {
  SparseMatrix m(2);
  m.add(0, 0, 1.0);
  m.add(0, 0, 1.0);  // same position stamped twice
  m.add(1, 1, 1.0);
  const auto x = SparseLu(m).solve({4.0, 1.0});
  EXPECT_NEAR(x[0], 2.0, 1e-14);
}

class SparseLuRandomTest : public ::testing::TestWithParam<std::pair<int, double>> {};

TEST_P(SparseLuRandomTest, MatchesDenseSolver) {
  const auto [n, density] = GetParam();
  Rng rng(2024 + n);
  SparseMatrix sp(n);
  DenseMatrix dn(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      if (r == c || rng.uniform() < density) {
        const double v = rng.uniform(-1, 1) + (r == c ? 3.0 : 0.0);
        sp.add(r, c, v);
        dn(r, c) += v;
      }
    }
  }
  std::vector<double> b(n);
  for (double& v : b) v = rng.uniform(-2, 2);
  const auto xs = SparseLu(sp).solve(b);
  const auto xd = DenseLu(dn).solve(b);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Grids, SparseLuRandomTest,
                         ::testing::Values(std::pair{4, 0.5}, std::pair{10, 0.3},
                                           std::pair{25, 0.15}, std::pair{60, 0.08},
                                           std::pair{120, 0.04}));

TEST(SparseLu, StructurallySymmetricCircuitLikeSystem) {
  // Resistor-ladder conductance matrix: tridiagonal SPD.
  const int n = 50;
  SparseMatrix m(n);
  for (int i = 0; i < n; ++i) {
    m.add(i, i, 2.0);
    if (i > 0) {
      m.add(i, i - 1, -1.0);
      m.add(i - 1, i, -1.0);
    }
  }
  std::vector<double> b(n, 0.0);
  b[0] = 1.0;  // current injected at one end
  const auto x = SparseLu(m).solve(b);
  // Check residual instead of closed form.
  const auto r = m.multiply(x);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(r[i], b[i], 1e-10);
  // Fill-in should stay tiny for a tridiagonal system.
  EXPECT_LE(SparseLu(m).factorNonZeros(), static_cast<size_t>(3 * n));
}

}  // namespace
}  // namespace vls
