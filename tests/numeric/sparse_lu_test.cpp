#include "numeric/lu_sparse.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "base/error.hpp"
#include "numeric/lu_dense.hpp"
#include "numeric/rng.hpp"

namespace vls {
namespace {

TEST(SparseMatrix, HandlesAccumulate) {
  SparseMatrix m(3);
  const size_t h = m.entryHandle(1, 2);
  m.addAt(h, 2.0);
  m.addAt(h, 3.0);
  EXPECT_DOUBLE_EQ(m.at(h), 5.0);
  EXPECT_EQ(m.entryHandle(1, 2), h);  // stable handle
  EXPECT_EQ(m.nonZeros(), 1u);
  m.clearValues();
  EXPECT_DOUBLE_EQ(m.at(h), 0.0);
  EXPECT_EQ(m.nonZeros(), 1u);  // pattern survives
}

TEST(SparseMatrix, MultiplyMatchesDense) {
  SparseMatrix m(3);
  m.add(0, 0, 2.0);
  m.add(0, 2, 1.0);
  m.add(2, 1, -1.0);
  const auto y = m.multiply({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], -2.0);
}

TEST(SparseMatrix, OutOfRangeThrows) {
  SparseMatrix m(2);
  EXPECT_THROW(m.entryHandle(2, 0), InvalidInputError);
}

TEST(SparseLu, SolvesDiagonal) {
  SparseMatrix m(3);
  m.add(0, 0, 2.0);
  m.add(1, 1, 4.0);
  m.add(2, 2, 8.0);
  const auto x = SparseLu(m).solve({2.0, 4.0, 8.0});
  for (double v : x) EXPECT_NEAR(v, 1.0, 1e-14);
}

TEST(SparseLu, PivotsZeroDiagonal) {
  // [[0 1],[1 0]] x = [2 3] -> x = [3 2]
  SparseMatrix m(2);
  m.add(0, 1, 1.0);
  m.add(1, 0, 1.0);
  const auto x = SparseLu(m).solve({2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
}

TEST(SparseLu, SingularThrows) {
  SparseMatrix m(2);
  m.add(0, 0, 1.0);
  m.add(0, 1, 2.0);
  m.add(1, 0, 0.5);
  m.add(1, 1, 1.0);
  EXPECT_THROW(SparseLu lu(m), NumericalError);
}

TEST(SparseLu, DuplicateStampsCollapse) {
  SparseMatrix m(2);
  m.add(0, 0, 1.0);
  m.add(0, 0, 1.0);  // same position stamped twice
  m.add(1, 1, 1.0);
  const auto x = SparseLu(m).solve({4.0, 1.0});
  EXPECT_NEAR(x[0], 2.0, 1e-14);
}

class SparseLuRandomTest : public ::testing::TestWithParam<std::pair<int, double>> {};

TEST_P(SparseLuRandomTest, MatchesDenseSolver) {
  const auto [n, density] = GetParam();
  Rng rng(2024 + n);
  SparseMatrix sp(n);
  DenseMatrix dn(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      if (r == c || rng.uniform() < density) {
        const double v = rng.uniform(-1, 1) + (r == c ? 3.0 : 0.0);
        sp.add(r, c, v);
        dn(r, c) += v;
      }
    }
  }
  std::vector<double> b(n);
  for (double& v : b) v = rng.uniform(-2, 2);
  const auto xs = SparseLu(sp).solve(b);
  const auto xd = DenseLu(dn).solve(b);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Grids, SparseLuRandomTest,
                         ::testing::Values(std::pair{4, 0.5}, std::pair{10, 0.3},
                                           std::pair{25, 0.15}, std::pair{60, 0.08},
                                           std::pair{120, 0.04}));

TEST(SparseLu, RefactorMatchesFreshFactorization) {
  // Same pattern, new values: the numeric-only refactor must agree with
  // a from-scratch factorization to tight tolerance.
  const int n = 40;
  Rng rng(99);
  SparseMatrix m(n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      if (r == c || rng.uniform() < 0.12) m.add(r, c, rng.uniform(-1, 1) + (r == c ? 3.0 : 0.0));
    }
  }
  SparseLu lu(m);
  EXPECT_EQ(lu.symbolicFactorizations(), 1u);

  for (int round = 0; round < 3; ++round) {
    // Rewrite every value in place; the pattern is untouched.
    for (size_t h = 0; h < m.entries().size(); ++h) {
      const bool diag = m.entries()[h].row == m.entries()[h].col;
      m.setAt(h, rng.uniform(-1, 1) + (diag ? 3.0 : 0.0));
    }
    lu.refactor(m);
    std::vector<double> b(n);
    for (double& v : b) v = rng.uniform(-2, 2);
    const auto x_reused = lu.solve(b);
    const auto x_fresh = SparseLu(m).solve(b);
    for (int i = 0; i < n; ++i) EXPECT_NEAR(x_reused[i], x_fresh[i], 1e-12);
  }
  EXPECT_EQ(lu.symbolicFactorizations(), 1u);  // numeric path only
  EXPECT_EQ(lu.numericRefactorizations(), 3u);
}

TEST(SparseLu, RefactorPatternChangeRerunsSymbolic) {
  SparseMatrix a(3);
  a.add(0, 0, 2.0);
  a.add(1, 1, 3.0);
  a.add(2, 2, 4.0);
  SparseLu lu(a);
  EXPECT_EQ(lu.symbolicFactorizations(), 1u);

  SparseMatrix b(3);  // extra off-diagonal entry: different pattern
  b.add(0, 0, 2.0);
  b.add(0, 1, 1.0);
  b.add(1, 1, 3.0);
  b.add(2, 2, 4.0);
  lu.refactor(b);
  EXPECT_EQ(lu.symbolicFactorizations(), 2u);
  const auto x = lu.solve({3.0, 3.0, 4.0});
  EXPECT_NEAR(x[1], 1.0, 1e-14);
  EXPECT_NEAR(x[0], 1.0, 1e-14);
  EXPECT_NEAR(x[2], 1.0, 1e-14);
}

TEST(SparseLu, RefactorPivotFailureRerunsSymbolic) {
  // First factorization pivots on the larger row-1 entry in column 0.
  SparseMatrix m(2);
  const size_t h00 = m.entryHandle(0, 0);
  const size_t h01 = m.entryHandle(0, 1);
  const size_t h10 = m.entryHandle(1, 0);
  const size_t h11 = m.entryHandle(1, 1);
  m.setAt(h00, 1.0);
  m.setAt(h01, 2.0);
  m.setAt(h10, 5.0);
  m.setAt(h11, 1.0);
  SparseLu lu(m);
  EXPECT_EQ(lu.symbolicFactorizations(), 1u);

  // New values make the cached pivot (row 1, column 0) essentially zero
  // while the matrix stays well-conditioned: the refactor must fall back
  // to a fresh symbolic pass transparently and still solve correctly.
  m.setAt(h10, 1e-20);
  lu.refactor(m);
  EXPECT_EQ(lu.symbolicFactorizations(), 2u);
  const auto x = lu.solve({3.0, 1.0});  // x = [1, 1]
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(SparseLu, RefactorSingularStillThrows) {
  SparseMatrix m(2);
  const size_t h00 = m.entryHandle(0, 0);
  m.setAt(h00, 1.0);
  const size_t h11 = m.entryHandle(1, 1);
  m.setAt(h11, 1.0);
  SparseLu lu(m);
  m.setAt(h11, 0.0);  // now truly singular
  EXPECT_THROW(lu.refactor(m), NumericalError);
}

TEST(SparseLu, DefaultConstructedRefactorFactorsFromScratch) {
  SparseMatrix m(2);
  m.add(0, 0, 2.0);
  m.add(1, 1, 4.0);
  SparseLu lu;
  lu.refactor(m);
  EXPECT_EQ(lu.symbolicFactorizations(), 1u);
  const auto x = lu.solve({2.0, 4.0});
  EXPECT_NEAR(x[0], 1.0, 1e-14);
  EXPECT_NEAR(x[1], 1.0, 1e-14);
}

TEST(SparseLu, SingularColumnIsReportedAndResetOnSuccess) {
  // [[1 2],[0.5 1]]: column 0 pivots fine, column 1 collapses after
  // elimination. Row pivoting preserves column order, so the reported
  // index is the original unknown index.
  SparseMatrix m(2);
  const size_t h00 = m.entryHandle(0, 0);
  const size_t h01 = m.entryHandle(0, 1);
  const size_t h10 = m.entryHandle(1, 0);
  const size_t h11 = m.entryHandle(1, 1);
  m.setAt(h00, 1.0);
  m.setAt(h01, 2.0);
  m.setAt(h10, 0.5);
  m.setAt(h11, 1.0);
  SparseLu lu;
  EXPECT_EQ(lu.lastSingularColumn(), -1);
  EXPECT_THROW(lu.refactor(m), NumericalError);
  EXPECT_EQ(lu.lastSingularColumn(), 1);
  // Fix the matrix: a clean factorization clears the report.
  m.setAt(h11, 5.0);
  lu.refactor(m);
  EXPECT_EQ(lu.lastSingularColumn(), -1);
}

TEST(SparseLu, NumericRefactorSingularityAlsoReported) {
  // Healthy factorization first, then the numeric-only refactor hits a
  // zeroed diagonal: the failing column must be reported even though the
  // fallback full factorization throws.
  SparseMatrix m(2);
  const size_t h00 = m.entryHandle(0, 0);
  const size_t h11 = m.entryHandle(1, 1);
  m.setAt(h00, 2.0);
  m.setAt(h11, 4.0);
  SparseLu lu(m);
  EXPECT_EQ(lu.lastSingularColumn(), -1);
  m.setAt(h11, 0.0);
  EXPECT_THROW(lu.refactor(m), NumericalError);
  EXPECT_EQ(lu.lastSingularColumn(), 1);
}

TEST(SparseLu, StructurallySymmetricCircuitLikeSystem) {
  // Resistor-ladder conductance matrix: tridiagonal SPD.
  const int n = 50;
  SparseMatrix m(n);
  for (int i = 0; i < n; ++i) {
    m.add(i, i, 2.0);
    if (i > 0) {
      m.add(i, i - 1, -1.0);
      m.add(i - 1, i, -1.0);
    }
  }
  std::vector<double> b(n, 0.0);
  b[0] = 1.0;  // current injected at one end
  const auto x = SparseLu(m).solve(b);
  // Check residual instead of closed form.
  const auto r = m.multiply(x);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(r[i], b[i], 1e-10);
  // Fill-in should stay tiny for a tridiagonal system.
  EXPECT_LE(SparseLu(m).factorNonZeros(), static_cast<size_t>(3 * n));
}

// Arrowhead matrix: dense hub row/column 0 plus the diagonal. Natural
// order eliminates the hub first and densifies everything downstream;
// minimum degree leaves the hub for last and produces zero fill.
SparseMatrix makeArrowhead(int n) {
  SparseMatrix m(n);
  m.add(0, 0, 4.0);
  for (int i = 1; i < n; ++i) {
    m.add(i, i, 4.0);
    m.add(0, i, 1.0);
    m.add(i, 0, 1.0);
  }
  return m;
}

TEST(MinimumDegreeOrder, IsADeterministicPermutation) {
  const auto m = makeArrowhead(12);
  const auto order = minimumDegreeOrder(12, m.entries());
  ASSERT_EQ(order.size(), 12u);
  auto sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (uint32_t i = 0; i < 12; ++i) EXPECT_EQ(sorted[i], i);  // a permutation
  EXPECT_EQ(order, minimumDegreeOrder(12, m.entries()));      // deterministic
  // The hub starts at maximal degree, so it outlives the spokes until
  // its degree decays to a tie (the lower index wins ties): it must be
  // one of the last two eliminations.
  const auto hub = std::find(order.begin(), order.end(), 0u);
  EXPECT_GE(static_cast<size_t>(hub - order.begin()), order.size() - 2);
}

TEST(SparseLuOrdering, MinDegreeMatchesDenseSolver) {
  for (const auto& [n, density] : {std::pair{10, 0.3}, std::pair{40, 0.1}, std::pair{120, 0.04}}) {
    Rng rng(7700 + n);
    SparseMatrix sp(n);
    DenseMatrix dn(n, n);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) {
        if (r == c || rng.uniform() < density) {
          const double v = rng.uniform(-1, 1) + (r == c ? 3.0 : 0.0);
          sp.add(r, c, v);
          dn(r, c) += v;
        }
      }
    }
    std::vector<double> b(n);
    for (double& v : b) v = rng.uniform(-2, 2);
    SparseLu lu;
    lu.setOrdering(LuOrdering::MinDegree);
    lu.factor(sp);
    const auto xs = lu.solve(b);
    const auto xd = DenseLu(dn).solve(b);
    for (int i = 0; i < n; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-9) << "n=" << n << " i=" << i;
  }
}

TEST(SparseLuOrdering, MinDegreeRemovesArrowheadFill) {
  const int n = 40;
  const auto m = makeArrowhead(n);
  SparseLu natural(m);
  SparseLu mindeg;
  mindeg.setOrdering(LuOrdering::MinDegree);
  mindeg.factor(m);
  // Natural order densifies the trailing block; min degree fills nothing.
  EXPECT_EQ(mindeg.fillCount(), 0u);
  EXPECT_GE(natural.fillCount(), static_cast<size_t>((n - 1) * (n - 2) / 2));
  // Both still solve the same system.
  std::vector<double> b(n, 1.0);
  const auto xn = natural.solve(b);
  const auto xm = mindeg.solve(b);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(xm[i], xn[i], 1e-12);
}

TEST(SparseLuOrdering, RefactorReusesOrderedSymbolicAnalysis) {
  const int n = 40;
  Rng rng(321);
  SparseMatrix m(n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      if (r == c || rng.uniform() < 0.12) m.add(r, c, rng.uniform(-1, 1) + (r == c ? 3.0 : 0.0));
    }
  }
  SparseLu lu;
  lu.setOrdering(LuOrdering::MinDegree);
  lu.factor(m);
  EXPECT_EQ(lu.symbolicFactorizations(), 1u);
  const size_t fill = lu.fillCount();
  for (int round = 0; round < 3; ++round) {
    for (size_t h = 0; h < m.entries().size(); ++h) {
      const bool diag = m.entries()[h].row == m.entries()[h].col;
      m.setAt(h, rng.uniform(-1, 1) + (diag ? 3.0 : 0.0));
    }
    lu.refactor(m);
    std::vector<double> b(n);
    for (double& v : b) v = rng.uniform(-2, 2);
    const auto x_reused = lu.solve(b);
    SparseLu fresh;
    fresh.setOrdering(LuOrdering::MinDegree);
    fresh.factor(m);
    const auto x_fresh = fresh.solve(b);
    for (int i = 0; i < n; ++i) EXPECT_NEAR(x_reused[i], x_fresh[i], 1e-12);
  }
  EXPECT_EQ(lu.symbolicFactorizations(), 1u);  // numeric path only
  EXPECT_EQ(lu.numericRefactorizations(), 3u);
  EXPECT_EQ(lu.fillCount(), fill);  // ordering survives the refactors
}

TEST(SparseLuOrdering, SetOrderingInvalidatesCachedAnalysis) {
  SparseMatrix m(3);
  m.add(0, 0, 2.0);
  m.add(1, 1, 3.0);
  m.add(2, 2, 4.0);
  SparseLu lu(m);
  EXPECT_EQ(lu.symbolicFactorizations(), 1u);
  lu.setOrdering(LuOrdering::MinDegree);
  lu.refactor(m);  // must re-run the symbolic phase under the new order
  EXPECT_EQ(lu.symbolicFactorizations(), 2u);
  const auto x = lu.solve({2.0, 3.0, 4.0});
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(x[i], 1.0, 1e-14);
}

TEST(SparseLuOrdering, SingularColumnReportsOriginalIndex) {
  // Zero out the hub column of an arrowhead. Min degree eliminates the
  // hub at the *last* step, but the report must still name original
  // column 0 — identically to natural order.
  const int n = 8;
  for (const LuOrdering ord : {LuOrdering::Natural, LuOrdering::MinDegree}) {
    SparseMatrix m = makeArrowhead(n);
    for (size_t h = 0; h < m.entries().size(); ++h) {
      if (m.entries()[h].col == 0) m.setAt(h, 0.0);
    }
    SparseLu lu;
    lu.setOrdering(ord);
    EXPECT_THROW(lu.factor(m), NumericalError) << luOrderingName(ord);
    EXPECT_EQ(lu.lastSingularColumn(), 0) << luOrderingName(ord);
  }
}

}  // namespace
}  // namespace vls
