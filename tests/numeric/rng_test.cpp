#include "numeric/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "numeric/statistics.hpp"

namespace vls {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.nextU64() == b.nextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMoments) {
  Rng rng(11);
  OnlineStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 5e-3);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 2e-3);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  OnlineStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, GaussianScaled) {
  Rng rng(17);
  OnlineStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.gaussian(3.0, 0.5));
  EXPECT_NEAR(stats.mean(), 3.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 0.5, 0.02);
}

TEST(Rng, GaussianTailFractionIsPlausible) {
  // ~31.7% of samples should fall outside +-1 sigma.
  Rng rng(19);
  int outside = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (std::fabs(rng.gaussian()) > 1.0) ++outside;
  }
  EXPECT_NEAR(static_cast<double>(outside) / n, 0.3173, 0.01);
}

TEST(Rng, BelowIsUnbiasedEnough) {
  Rng rng(23);
  int counts[5] = {0};
  for (int i = 0; i < 50000; ++i) ++counts[rng.below(5)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, SplitStreamsAreIndependentish) {
  Rng base(99);
  Rng a = base.split();
  Rng b = base.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.nextU64() == b.nextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace vls
