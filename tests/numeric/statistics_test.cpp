#include "numeric/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "base/error.hpp"

namespace vls {
namespace {

TEST(OnlineStats, KnownSmallSample) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, SingleSample) {
  OnlineStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(OnlineStats, NumericallyStableAroundLargeOffset) {
  OnlineStats s;
  const double offset = 1e9;
  for (double x : {offset + 1, offset + 2, offset + 3}) s.add(x);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(Percentile, SortedInterpolation) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentileSorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentileSorted(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentileSorted(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentileSorted(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(percentileSorted(v, 0.125), 1.5);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW(percentileSorted({}, 0.5), InvalidInputError);
}

TEST(Summary, Summarize) {
  const Summary s = summarize({3.0, 1.0, 2.0, 5.0, 4.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Summary, EmptyIsZeros) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

}  // namespace
}  // namespace vls
