#include "numeric/statistics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "base/error.hpp"
#include "numeric/rng.hpp"

namespace vls {
namespace {

TEST(OnlineStats, KnownSmallSample) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, SingleSample) {
  OnlineStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(OnlineStats, NumericallyStableAroundLargeOffset) {
  OnlineStats s;
  const double offset = 1e9;
  for (double x : {offset + 1, offset + 2, offset + 3}) s.add(x);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(Percentile, SortedInterpolation) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentileSorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentileSorted(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentileSorted(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentileSorted(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(percentileSorted(v, 0.125), 1.5);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW(percentileSorted({}, 0.5), InvalidInputError);
}

TEST(Summary, Summarize) {
  const Summary s = summarize({3.0, 1.0, 2.0, 5.0, 4.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Summary, EmptyIsZeros) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(P2Quantile, ExactBelowFiveObservations) {
  P2Quantile median(0.5);
  EXPECT_DOUBLE_EQ(median.value(), 0.0);
  median.add(7.0);
  EXPECT_DOUBLE_EQ(median.value(), 7.0);
  median.add(1.0);
  EXPECT_DOUBLE_EQ(median.value(), 4.0);
  median.add(3.0);
  EXPECT_DOUBLE_EQ(median.value(), 3.0);
  median.add(9.0);
  EXPECT_DOUBLE_EQ(median.value(), percentileSorted({1.0, 3.0, 7.0, 9.0}, 0.5));
}

/// Streaming quantile vs the exact (sorted-vector) percentile on a
/// distribution shape the P-squared markers must track.
void expectP2TracksExact(const std::vector<double>& data, double q, double rel_tol) {
  P2Quantile est(q);
  for (double x : data) est.add(x);
  std::vector<double> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  const double exact = percentileSorted(sorted, q);
  const double spread = sorted.back() - sorted.front();
  EXPECT_NEAR(est.value(), exact, rel_tol * spread)
      << "q=" << q << " n=" << data.size();
}

TEST(P2Quantile, TracksUniformSamples) {
  Rng rng(11);
  std::vector<double> data(20000);
  for (auto& x : data) x = rng.uniform();
  for (const double q : {0.05, 0.5, 0.95}) expectP2TracksExact(data, q, 0.01);
}

TEST(P2Quantile, TracksNormalSamples) {
  Rng rng(12);
  std::vector<double> data(20000);
  for (auto& x : data) x = rng.gaussian(5.0, 2.0);
  for (const double q : {0.05, 0.5, 0.95}) expectP2TracksExact(data, q, 0.01);
}

TEST(P2Quantile, TracksBimodalSamples) {
  // Two well-separated modes: the hardest shape for marker-based
  // estimators (the median sits in a low-density valley).
  Rng rng(13);
  std::vector<double> data(20000);
  for (auto& x : data) {
    x = rng.below(2) == 0 ? rng.gaussian(-4.0, 0.5) : rng.gaussian(4.0, 0.5);
  }
  for (const double q : {0.05, 0.95}) expectP2TracksExact(data, q, 0.01);
  expectP2TracksExact(data, 0.5, 0.08);  // valley median is genuinely hard
}

TEST(StreamingSummary, MatchesExactSummarize) {
  Rng rng(14);
  std::vector<double> data(50000);
  for (auto& x : data) x = std::exp(rng.gaussian(0.0, 0.3));  // lognormal, skewed
  StreamingSummary stream;
  for (double x : data) stream.add(x);
  const Summary exact = summarize(data);
  const Summary s = stream.summary();
  EXPECT_EQ(s.count, exact.count);
  EXPECT_NEAR(s.mean, exact.mean, 1e-12 * exact.mean);  // Welford: exact-grade
  EXPECT_NEAR(s.stddev, exact.stddev, 1e-9 * exact.stddev);
  EXPECT_DOUBLE_EQ(s.min, exact.min);
  EXPECT_DOUBLE_EQ(s.max, exact.max);
  EXPECT_NEAR(s.p05, exact.p05, 0.01 * exact.p05);
  EXPECT_NEAR(s.median, exact.median, 0.01 * exact.median);
  EXPECT_NEAR(s.p95, exact.p95, 0.01 * exact.p95);
}

TEST(StreamingSummary, SmallCountsAreExact) {
  StreamingSummary stream;
  for (double x : {3.0, 1.0, 2.0, 5.0, 4.0}) stream.add(x);
  const Summary exact = summarize({3.0, 1.0, 2.0, 5.0, 4.0});
  const Summary s = stream.summary();
  EXPECT_DOUBLE_EQ(s.mean, exact.mean);
  EXPECT_DOUBLE_EQ(s.median, exact.median);
  EXPECT_NEAR(s.stddev, exact.stddev, 1e-12);
}

// Checkpoint state: save at an arbitrary watermark, restore into a
// fresh accumulator, feed the remainder — every result must be
// bit-identical to the uninterrupted run. This is the foundation of the
// Monte-Carlo resume-bit-identity guarantee.
TEST(StatisticsState, OnlineStatsRoundTripsBitIdentically) {
  Rng rng(7);
  std::vector<double> data(1000);
  for (auto& x : data) x = rng.gaussian(1.0, 0.25);
  for (size_t k : {size_t{0}, size_t{1}, size_t{4}, size_t{137}, size_t{999}}) {
    OnlineStats full;
    OnlineStats head;
    for (size_t i = 0; i < k; ++i) {
      full.add(data[i]);
      head.add(data[i]);
    }
    std::vector<double> state;
    head.saveState(state);
    OnlineStats resumed;
    size_t pos = 0;
    resumed.restoreState(state, pos);
    EXPECT_EQ(pos, state.size());
    for (size_t i = k; i < data.size(); ++i) {
      full.add(data[i]);
      resumed.add(data[i]);
    }
    EXPECT_EQ(resumed.count(), full.count());
    EXPECT_EQ(resumed.mean(), full.mean());  // bit-exact, not NEAR
    EXPECT_EQ(resumed.variance(), full.variance());
    EXPECT_EQ(resumed.min(), full.min());
    EXPECT_EQ(resumed.max(), full.max());
  }
}

TEST(StatisticsState, P2QuantileRoundTripsBitIdentically) {
  Rng rng(21);
  std::vector<double> data(5000);
  for (auto& x : data) x = std::exp(rng.gaussian(0.0, 0.4));
  for (size_t k : {size_t{3}, size_t{5}, size_t{1234}}) {
    P2Quantile full(0.95);
    P2Quantile head(0.95);
    for (size_t i = 0; i < k; ++i) {
      full.add(data[i]);
      head.add(data[i]);
    }
    std::vector<double> state;
    head.saveState(state);
    P2Quantile resumed(0.95);
    size_t pos = 0;
    resumed.restoreState(state, pos);
    for (size_t i = k; i < data.size(); ++i) {
      full.add(data[i]);
      resumed.add(data[i]);
    }
    EXPECT_EQ(resumed.count(), full.count());
    EXPECT_EQ(resumed.value(), full.value());  // bit-exact
  }
}

TEST(StatisticsState, P2QuantileRejectsMismatchedQuantile) {
  P2Quantile p95(0.95);
  p95.add(1.0);
  std::vector<double> state;
  p95.saveState(state);
  P2Quantile median(0.50);
  size_t pos = 0;
  EXPECT_THROW(median.restoreState(state, pos), Error);
}

TEST(StatisticsState, StreamingSummaryRoundTripsBitIdentically) {
  Rng rng(42);
  std::vector<double> data(20000);
  for (auto& x : data) x = rng.gaussian(3.0, 1.5);
  const size_t k = 7919;
  StreamingSummary full;
  StreamingSummary head;
  for (size_t i = 0; i < k; ++i) {
    full.add(data[i]);
    head.add(data[i]);
  }
  StreamingSummary resumed;
  resumed.restoreState(head.saveState());
  for (size_t i = k; i < data.size(); ++i) {
    full.add(data[i]);
    resumed.add(data[i]);
  }
  const Summary a = full.summary();
  const Summary b = resumed.summary();
  EXPECT_EQ(b.count, a.count);
  EXPECT_EQ(b.mean, a.mean);
  EXPECT_EQ(b.stddev, a.stddev);
  EXPECT_EQ(b.min, a.min);
  EXPECT_EQ(b.max, a.max);
  EXPECT_EQ(b.p05, a.p05);
  EXPECT_EQ(b.median, a.median);
  EXPECT_EQ(b.p95, a.p95);
}

TEST(StatisticsState, StreamingSummaryRejectsWrongLength) {
  StreamingSummary s;
  s.add(1.0);
  std::vector<double> state = s.saveState();
  state.pop_back();
  StreamingSummary fresh;
  EXPECT_THROW(fresh.restoreState(state), Error);
}

}  // namespace
}  // namespace vls
