#include "io/csv.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "base/error.hpp"
#include "circuit/circuit.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "io/json_writer.hpp"
#include "sim/simulator.hpp"

namespace vls {
namespace {

TEST(Csv, RendersColumns) {
  const std::string text = csvToString({{"t", {0.0, 1.0}}, {"v", {0.5, 1.5}}});
  EXPECT_EQ(text, "t,v\n0,0.5\n1,1.5\n");
}

TEST(Csv, RejectsRaggedAndEmpty) {
  EXPECT_THROW(csvToString({}), InvalidInputError);
  EXPECT_THROW(csvToString({{"a", {1.0}}, {"b", {1.0, 2.0}}}), InvalidInputError);
}

TEST(Csv, WritesWaveformFile) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add<VoltageSource>("v", a, kGround, 1.0);
  c.add<Resistor>("r", a, kGround, 100.0);
  Simulator sim(c);
  const auto tr = sim.transient(1e-9, 1e-10);
  const std::string path = "/tmp/vls_csv_test.csv";
  writeWaveformsCsv(path, tr, {"a"});
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "time,a");
  std::remove(path.c_str());
}

TEST(Json, BasicSerialization) {
  JsonValue::Object obj;
  obj["name"] = "table1";
  obj["count"] = 3;
  obj["ok"] = true;
  obj["values"] = std::vector<double>{1.0, 2.5};
  const std::string s = JsonValue(obj).dump();
  EXPECT_NE(s.find("\"name\": \"table1\""), std::string::npos);
  EXPECT_NE(s.find("\"count\": 3"), std::string::npos);
  EXPECT_NE(s.find("\"ok\": true"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
}

TEST(Json, EscapesStrings) {
  const std::string s = JsonValue(std::string("a\"b\\c\nd")).dump();
  EXPECT_NE(s.find("\\\""), std::string::npos);
  EXPECT_NE(s.find("\\\\"), std::string::npos);
  EXPECT_NE(s.find("\\n"), std::string::npos);
}

TEST(Json, NonFiniteBecomesNull) {
  EXPECT_EQ(JsonValue(std::nan("")).dump(), "null\n");
}

}  // namespace
}  // namespace vls
