#include "io/netlist_writer.hpp"

#include <gtest/gtest.h>

#include "cells/sstvs.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "io/netlist_parser.hpp"
#include "sim/simulator.hpp"

namespace vls {
namespace {

TEST(Writer, EmitsAllElementTypes) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  c.add<VoltageSource>("v1", a, kGround, 1.2);
  c.add<Resistor>("r1", a, b, 1000.0);
  c.add<Capacitor>("c1", b, kGround, 1e-12);
  c.add<Inductor>("l1", b, kGround, 1e-9);
  MosGeometry g;
  c.add<Mosfet>("m1", b, a, kGround, kGround, nmos90(), g);
  const std::string text = writeNetlist(c, "export test");
  EXPECT_NE(text.find("export test"), std::string::npos);
  EXPECT_NE(text.find("Rr1 a b 1000"), std::string::npos);
  EXPECT_NE(text.find("Cc1 b 0 1e-12"), std::string::npos);
  EXPECT_NE(text.find("Mm1 b a 0 0 nmos"), std::string::npos);
  EXPECT_NE(text.find(".model nmos nmos"), std::string::npos);
  EXPECT_NE(text.find(".end"), std::string::npos);
}

TEST(Writer, RoundTripPreservesDcSolution) {
  // Build a MOS divider, export, re-parse, and check the operating
  // points agree.
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("v1", vdd, kGround, 1.2);
  c.add<VoltageSource>("v2", in, kGround, 0.6);
  MosGeometry gp;
  gp.w = 520e-9;
  MosGeometry gn;
  gn.w = 260e-9;
  c.add<Mosfet>("mp", out, in, vdd, vdd, pmos90(), gp);
  c.add<Mosfet>("mn", out, in, kGround, kGround, nmos90(), gn);
  Simulator sim1(c);
  const double v_out_orig = sim1.solveOp()[out];

  const std::string text = writeNetlist(c, "roundtrip");
  ParsedNetlist nl = parseNetlist(text);
  Simulator sim2(nl.circuit);
  const double v_out_rt = sim2.solveOp()[*nl.circuit.findNode("out")];
  EXPECT_NEAR(v_out_rt, v_out_orig, 1e-4);
}

TEST(Writer, SstvsCellExportsAndReimports) {
  Circuit c;
  const NodeId vddo = c.node("vddo");
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("vo", vddo, kGround, 1.2);
  c.add<VoltageSource>("vin", in, kGround, 0.8);
  buildSstvs(c, "xdut", in, out, vddo, {});
  const std::string text = writeNetlist(c, "sstvs cell");
  // All five model cards used by the cell must be emitted.
  EXPECT_NE(text.find(".model nmos_hvt"), std::string::npos);
  EXPECT_NE(text.find(".model nmos_lvt"), std::string::npos);
  EXPECT_NE(text.find(".model pmos_hvt"), std::string::npos);

  ParsedNetlist nl = parseNetlist(text);
  Simulator sim(nl.circuit);
  const auto x = sim.solveOp();
  EXPECT_NEAR(x[*nl.circuit.findNode("out")], 0.0, 0.05);
  EXPECT_NEAR(x[*nl.circuit.findNode("xdut.node2")], 1.2, 0.05);
}

}  // namespace
}  // namespace vls
