#include "io/ascii_plot.hpp"

#include <gtest/gtest.h>

#include "base/error.hpp"
#include "circuit/circuit.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "sim/simulator.hpp"

namespace vls {
namespace {

Signal ramp() {
  Signal s;
  for (int i = 0; i <= 10; ++i) {
    s.time.push_back(i * 1e-10);
    s.value.push_back(i * 0.1);
  }
  return s;
}

TEST(AsciiPlot, BasicStructure) {
  AsciiPlotOptions opt;
  opt.width = 40;
  opt.height = 6;
  const std::string out = renderAsciiPlot({{"ramp", ramp()}}, opt);
  EXPECT_NE(out.find("ramp:"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("+----"), std::string::npos);
  // 6 rows + axis + time labels + name line.
  size_t lines = 0;
  for (char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 9u);
}

TEST(AsciiPlot, MonotoneRampFillsDiagonal) {
  AsciiPlotOptions opt;
  opt.width = 20;
  opt.height = 5;
  const std::string out = renderAsciiPlot({{"r", ramp()}}, opt);
  // First data row (top) must contain a mark near the right edge; the
  // bottom data row near the left edge.
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < out.size()) {
    const size_t nl = out.find('\n', pos);
    lines.push_back(out.substr(pos, nl - pos));
    pos = nl + 1;
  }
  const std::string& top = lines[1];
  const std::string& bottom = lines[5];
  EXPECT_GT(top.rfind('*'), top.size() - 5);
  EXPECT_LT(bottom.find('*'), 15u);
}

TEST(AsciiPlot, SharedAxisOverlaysMarks) {
  Signal flat;
  flat.time = {0.0, 1e-9};
  flat.value = {0.5, 0.5};
  AsciiPlotOptions opt;
  opt.shared_axis = true;
  opt.width = 30;
  opt.height = 5;
  const std::string out = renderAsciiPlot({{"a", ramp()}, {"b", flat}}, opt);
  EXPECT_NE(out.find("[*] a"), std::string::npos);
  EXPECT_NE(out.find("[+] b"), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(AsciiPlot, EmptyThrows) {
  EXPECT_THROW(renderAsciiPlot({}), InvalidInputError);
}

TEST(AsciiPlot, PlotNodesFromTransient) {
  Circuit c;
  const NodeId a = c.node("a");
  PulseSpec p;
  p.v1 = 0;
  p.v2 = 1;
  p.delay = 0.2e-9;
  p.rise = p.fall = 1e-11;
  p.width = 0.4e-9;
  c.add<VoltageSource>("v", a, kGround, Waveform::pulse(p));
  c.add<Resistor>("r", a, kGround, 1e3);
  Simulator sim(c);
  const auto tr = sim.transient(1e-9, 2e-11);
  const std::string out = plotNodes(tr, {"a"});
  EXPECT_NE(out.find("a:"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

}  // namespace
}  // namespace vls
