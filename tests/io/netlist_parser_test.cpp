#include "io/netlist_parser.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "devices/mosfet.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "sim/simulator.hpp"

namespace vls {
namespace {

TEST(Parser, TitleCommentsContinuations) {
  ParsedNetlist nl = parseNetlist(
      "my title line\n"
      "* a comment\n"
      "r1 a b 1k ; trailing comment\n"
      "+\n"
      "c1 b 0\n"
      "+ 10p\n"
      ".end\n");
  EXPECT_EQ(nl.title, "my title line");
  auto* r = dynamic_cast<Resistor*>(nl.circuit.findDevice("r1"));
  ASSERT_NE(r, nullptr);
  EXPECT_DOUBLE_EQ(r->resistance(), 1000.0);
  auto* c = dynamic_cast<Capacitor*>(nl.circuit.findDevice("c1"));
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->capacitance(), 10e-12);
}

TEST(Parser, SourcesAllFlavours) {
  ParsedNetlist nl = parseNetlist(
      "sources\n"
      "v1 a 0 1.2\n"
      "v2 b 0 DC 0.8\n"
      "v3 c 0 PULSE(0 1.2 1n 10p 10p 400p 1n)\n"
      "v4 d 0 PWL(0 0 1n 1.2)\n"
      "v5 e 0 SIN(0.6 0.6 1meg)\n"
      "i1 0 a 1u\n"
      ".end\n");
  auto wave_of = [&](const char* name) {
    return dynamic_cast<VoltageSource*>(nl.circuit.findDevice(name))->waveform();
  };
  EXPECT_DOUBLE_EQ(wave_of("v1").at(0.0), 1.2);
  EXPECT_DOUBLE_EQ(wave_of("v2").at(0.0), 0.8);
  EXPECT_DOUBLE_EQ(wave_of("v3").at(0.5e-9), 0.0);
  EXPECT_DOUBLE_EQ(wave_of("v3").at(1.2e-9), 1.2);
  EXPECT_NEAR(wave_of("v4").at(0.5e-9), 0.6, 1e-12);
  EXPECT_NEAR(wave_of("v5").at(0.25e-6), 1.2, 1e-9);
}

TEST(Parser, MosfetWithModelCard) {
  ParsedNetlist nl = parseNetlist(
      "mos deck\n"
      ".model mynmos nmos vto=0.45 kp=300u n=1.3\n"
      "m1 d g s 0 mynmos w=0.4u l=0.1u\n"
      "m2 d g s 0 nmos_hvt w=0.2u l=0.1u\n"
      ".end\n");
  auto* m1 = dynamic_cast<Mosfet*>(nl.circuit.findDevice("m1"));
  ASSERT_NE(m1, nullptr);
  EXPECT_DOUBLE_EQ(m1->model().vt0, 0.45);
  EXPECT_DOUBLE_EQ(m1->model().kp, 300e-6);
  EXPECT_NEAR(m1->geometry().w, 0.4e-6, 1e-15);
  auto* m2 = dynamic_cast<Mosfet*>(nl.circuit.findDevice("m2"));
  ASSERT_NE(m2, nullptr);
  EXPECT_DOUBLE_EQ(m2->model().vt0, 0.49);  // built-in card
}

TEST(Parser, SubcircuitFlattening) {
  ParsedNetlist nl = parseNetlist(
      "subckt deck\n"
      ".subckt divider top out\n"
      "r1 top out 1k\n"
      "r2 out 0 1k\n"
      ".ends\n"
      "v1 in 0 2.0\n"
      "x1 in mid divider\n"
      "x2 mid low divider\n"
      ".op\n"
      ".end\n");
  // Internal devices exist with prefixed names.
  EXPECT_NE(nl.circuit.findDevice("x1.r1"), nullptr);
  EXPECT_NE(nl.circuit.findDevice("x2.r2"), nullptr);
  Simulator sim(nl.circuit);
  const auto x = sim.solveOp();
  const NodeId mid = *nl.circuit.findNode("mid");
  const NodeId low = *nl.circuit.findNode("low");
  // KCL: 3*mid - low = 2 and mid = 2*low  =>  mid = 0.8 V, low = 0.4 V.
  EXPECT_NEAR(x[mid], 0.8, 1e-6);
  EXPECT_NEAR(x[low], 0.4, 1e-6);
}

TEST(Parser, NestedSubcircuits) {
  ParsedNetlist nl = parseNetlist(
      "nest\n"
      ".subckt leaf a b\n"
      "r1 a b 100\n"
      ".ends\n"
      ".subckt pair a b\n"
      "x1 a m leaf\n"
      "x2 m b leaf\n"
      ".ends\n"
      "xtop in 0 pair\n"
      ".end\n");
  EXPECT_NE(nl.circuit.findDevice("xtop.x1.r1"), nullptr);
  EXPECT_NE(nl.circuit.findDevice("xtop.x2.r1"), nullptr);
}

TEST(Parser, AnalysisCards) {
  ParsedNetlist nl = parseNetlist(
      "cards\n"
      "v1 a 0 1\n"
      "r1 a 0 1k\n"
      ".op\n"
      ".tran 1p 2n\n"
      ".dc v1 0 1.2 0.1\n"
      ".temp 60\n"
      ".save v(a) a\n"
      ".end\n");
  ASSERT_EQ(nl.analyses.size(), 3u);
  EXPECT_EQ(nl.analyses[0].kind, AnalysisCommand::Kind::Op);
  EXPECT_EQ(nl.analyses[1].kind, AnalysisCommand::Kind::Tran);
  EXPECT_DOUBLE_EQ(nl.analyses[1].tran_stop, 2e-9);
  EXPECT_EQ(nl.analyses[2].kind, AnalysisCommand::Kind::DcSweep);
  EXPECT_EQ(nl.analyses[2].dc_source, "v1");
  EXPECT_DOUBLE_EQ(nl.temperature_c, 60.0);
  EXPECT_FALSE(nl.save_nodes.empty());
}

TEST(Parser, AcCardAndSourceMagnitude) {
  ParsedNetlist nl = parseNetlist(
      "ac deck\n"
      "v1 a 0 DC 0.6 AC 1.0\n"
      "r1 a b 1k\n"
      "c1 b 0 1p\n"
      ".ac dec 10 1meg 1g\n"
      ".end\n");
  ASSERT_EQ(nl.analyses.size(), 1u);
  EXPECT_EQ(nl.analyses[0].kind, AnalysisCommand::Kind::Ac);
  EXPECT_DOUBLE_EQ(nl.analyses[0].ac_fstart, 1e6);
  EXPECT_DOUBLE_EQ(nl.analyses[0].ac_fstop, 1e9);
  EXPECT_EQ(nl.analyses[0].ac_points_per_decade, 10);
  auto* v = dynamic_cast<VoltageSource*>(nl.circuit.findDevice("v1"));
  ASSERT_NE(v, nullptr);
  EXPECT_DOUBLE_EQ(v->acMagnitude(), 1.0);
  EXPECT_DOUBLE_EQ(v->waveform().at(0.0), 0.6);

  // Run it end to end: RC corner at ~159 MHz.
  Simulator sim(nl.circuit);
  const AcResult res = sim.ac(nl.analyses[0].ac_fstart, nl.analyses[0].ac_fstop,
                              nl.analyses[0].ac_points_per_decade);
  const auto corner = res.cornerFrequency("b");
  ASSERT_TRUE(corner);
  EXPECT_NEAR(*corner, 1.59e8, 1e7);
}

TEST(Parser, ParamSubstitution) {
  ParsedNetlist nl = parseNetlist(
      "params\n"
      ".param rload=2k wdrv=0.52u\n"
      ".param rhalf={rload}\n"
      "r1 a 0 {rload}\n"
      "m1 a g 0 0 nmos w={wdrv} l=0.1u\n"
      ".subckt cell p\n"
      "r2 p 0 {rhalf}\n"
      ".ends\n"
      "x1 a cell\n"
      ".end\n");
  auto* r1 = dynamic_cast<Resistor*>(nl.circuit.findDevice("r1"));
  ASSERT_NE(r1, nullptr);
  EXPECT_DOUBLE_EQ(r1->resistance(), 2000.0);
  auto* m1 = dynamic_cast<Mosfet*>(nl.circuit.findDevice("m1"));
  ASSERT_NE(m1, nullptr);
  EXPECT_NEAR(m1->geometry().w, 0.52e-6, 1e-15);
  auto* r2 = dynamic_cast<Resistor*>(nl.circuit.findDevice("x1.r2"));
  ASSERT_NE(r2, nullptr);
  EXPECT_DOUBLE_EQ(r2->resistance(), 2000.0);
}

TEST(Parser, IncludeDirective) {
  const std::string inc_path = "/tmp/vls_include_test.sp";
  {
    std::ofstream out(inc_path);
    out << ".param rinc=3k\nr2 b 0 {rinc}\n";
  }
  ParsedNetlist nl = parseNetlist(
      "include deck\n"
      "r1 a b 1k\n"
      ".include " + inc_path + "\n"
      ".end\n");
  auto* r2 = dynamic_cast<Resistor*>(nl.circuit.findDevice("r2"));
  ASSERT_NE(r2, nullptr);
  EXPECT_DOUBLE_EQ(r2->resistance(), 3000.0);
  std::remove(inc_path.c_str());
}

TEST(Parser, IncludeMissingFileThrows) {
  EXPECT_THROW(parseNetlist("t\n.include /no/such/file.sp\n.end\n"), InvalidInputError);
}

TEST(Parser, ParamErrors) {
  EXPECT_THROW(parseNetlist("t\nr1 a 0 {nope}\n.end\n"), InvalidInputError);
  EXPECT_THROW(parseNetlist("t\n.param broken\n.end\n"), InvalidInputError);
  EXPECT_THROW(parseNetlist("t\nr1 a 0 {unterminated\n.end\n"), InvalidInputError);
}

TEST(Parser, AcCardRejectsBadSyntax) {
  EXPECT_THROW(parseNetlist("t\n.ac lin 10 1 2\n.end\n"), InvalidInputError);
  EXPECT_THROW(parseNetlist("t\n.ac dec 10 1\n.end\n"), InvalidInputError);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parseNetlist("t\nr1 a b\n.end\n");
    FAIL() << "expected throw";
  } catch (const InvalidInputError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, RejectsUnknownThings) {
  EXPECT_THROW(parseNetlist("t\nq1 a b c qmod\n.end\n"), InvalidInputError);
  EXPECT_THROW(parseNetlist("t\nm1 d g s 0 nosuchmodel w=1u l=1u\n.end\n"), InvalidInputError);
  EXPECT_THROW(parseNetlist("t\nx1 a b nosub\n.end\n"), InvalidInputError);
  EXPECT_THROW(parseNetlist("t\n.subckt s a\nr1 a 0 1\n"), InvalidInputError);  // unterminated
  EXPECT_THROW(parseNetlist("t\n.frobnicate\n.end\n"), InvalidInputError);
}

TEST(Parser, SubcircuitPortCountMismatch) {
  EXPECT_THROW(parseNetlist("t\n.subckt s a b\nr1 a b 1\n.ends\nx1 n1 s\n.end\n"),
               InvalidInputError);
}

TEST(Parser, ControlledSources) {
  ParsedNetlist nl = parseNetlist(
      "ctl\n"
      "v1 in 0 0.5\n"
      "e1 out 0 in 0 4\n"
      "g1 out2 0 in 0 1m\n"
      "r1 out 0 1k\n"
      "r2 out2 0 1k\n"
      ".end\n");
  Simulator sim(nl.circuit);
  const auto x = sim.solveOp();
  EXPECT_NEAR(x[*nl.circuit.findNode("out")], 2.0, 1e-9);
  EXPECT_NEAR(x[*nl.circuit.findNode("out2")], -0.5, 1e-9);
}

TEST(Parser, GroundAliasInsideSubckt) {
  ParsedNetlist nl = parseNetlist(
      "gndalias\n"
      ".subckt cell a\n"
      "r1 a gnd 1k\n"
      ".ends\n"
      "v1 n 0 1\n"
      "x1 n cell\n"
      ".end\n");
  Simulator sim(nl.circuit);
  const auto x = sim.solveOp();
  auto* v = dynamic_cast<VoltageSource*>(nl.circuit.findDevice("v1"));
  EXPECT_NEAR(x[v->branchIndex()], -1e-3, 1e-9);  // 1 mA delivered to ground
}

}  // namespace
}  // namespace vls
