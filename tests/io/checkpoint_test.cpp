// The checkpoint container: primitive encodings must round-trip
// bit-exactly (doubles as raw IEEE-754 patterns), every underrun must
// throw, and the file envelope must reject wrong magic, wrong kind,
// truncation and payload corruption — a resumed run either sees exactly
// what was written or refuses to start.
#include "io/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "base/error.hpp"

namespace vls {
namespace {

/// Removes the checkpoint file on scope exit so tests never leak state.
struct ScopedFile {
  explicit ScopedFile(std::string p) : path(std::move(p)) { std::remove(path.c_str()); }
  ~ScopedFile() { std::remove(path.c_str()); }
  std::string path;
};

TEST(Checkpoint, PrimitivesRoundTripBitExact) {
  CheckpointWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.f64(-1.2345678901234567e-9);
  w.f64(0.0);
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::denorm_min());
  w.str("stage 'newton', node \"out\"");
  w.f64vec({1.0, -2.5, 3.25e-15});
  w.blob({0x00, 0xFF, 0x7F});

  CheckpointReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.f64(), -1.2345678901234567e-9);
  EXPECT_EQ(r.f64(), 0.0);
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::denorm_min());
  EXPECT_EQ(r.str(), "stage 'newton', node \"out\"");
  EXPECT_EQ(r.f64vec(), (std::vector<double>{1.0, -2.5, 3.25e-15}));
  EXPECT_EQ(r.blob(), (std::vector<uint8_t>{0x00, 0xFF, 0x7F}));
  EXPECT_TRUE(r.atEnd());
}

TEST(Checkpoint, NanRoundTripsAsBits) {
  CheckpointWriter w;
  w.f64(std::numeric_limits<double>::quiet_NaN());
  w.f64(std::numeric_limits<double>::infinity());
  CheckpointReader r(w.bytes());
  EXPECT_TRUE(std::isnan(r.f64()));
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
}

TEST(Checkpoint, UnderrunThrows) {
  CheckpointWriter w;
  w.u32(7);
  CheckpointReader r(w.bytes());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_THROW(r.u8(), InvalidInputError);
  EXPECT_THROW(CheckpointReader(w.bytes()).u64(), InvalidInputError);
  EXPECT_THROW(CheckpointReader({}).f64(), InvalidInputError);
}

TEST(Checkpoint, StringLengthBeyondPayloadThrows) {
  // A length prefix promising more bytes than the payload holds must
  // fail instead of reading past the end.
  CheckpointWriter w;
  w.u64(1000);  // claims a 1000-byte string
  w.u8('x');
  CheckpointReader r(w.bytes());
  EXPECT_THROW(r.str(), InvalidInputError);
}

TEST(Checkpoint, FileRoundTrip) {
  ScopedFile f("test_checkpoint_roundtrip.vlsckpt");
  CheckpointWriter w;
  w.u32(1);  // sub-version
  w.f64vec({3.14, -2.71e-12});
  w.str("payload");
  writeCheckpointFile(f.path, kCheckpointKindMonteCarlo, w);
  ASSERT_TRUE(checkpointFileExists(f.path));

  CheckpointReader r = readCheckpointFile(f.path, kCheckpointKindMonteCarlo);
  EXPECT_EQ(r.u32(), 1u);
  EXPECT_EQ(r.f64vec(), (std::vector<double>{3.14, -2.71e-12}));
  EXPECT_EQ(r.str(), "payload");
  EXPECT_TRUE(r.atEnd());
}

TEST(Checkpoint, WrongKindRejected) {
  ScopedFile f("test_checkpoint_kind.vlsckpt");
  CheckpointWriter w;
  w.u32(1);
  writeCheckpointFile(f.path, kCheckpointKindMonteCarlo, w);
  EXPECT_THROW(readCheckpointFile(f.path, kCheckpointKindCharFarm), InvalidInputError);
}

TEST(Checkpoint, MissingFileRejected) {
  EXPECT_FALSE(checkpointFileExists("no_such_file.vlsckpt"));
  EXPECT_THROW(readCheckpointFile("no_such_file.vlsckpt", kCheckpointKindMonteCarlo),
               Error);
}

TEST(Checkpoint, CorruptPayloadFailsCrc) {
  ScopedFile f("test_checkpoint_crc.vlsckpt");
  CheckpointWriter w;
  w.u32(1);
  w.f64vec({1.0, 2.0, 3.0});
  writeCheckpointFile(f.path, kCheckpointKindMonteCarlo, w);

  // Flip one bit in the middle of the payload region.
  std::vector<char> bytes;
  {
    std::ifstream in(f.path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 32u);
  bytes[28] ^= 0x01;  // inside the payload (envelope header is 24 bytes)
  {
    std::ofstream out(f.path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(readCheckpointFile(f.path, kCheckpointKindMonteCarlo), InvalidInputError);
}

TEST(Checkpoint, TruncatedFileRejected) {
  ScopedFile f("test_checkpoint_trunc.vlsckpt");
  CheckpointWriter w;
  w.u32(1);
  w.str("a reasonably long payload string to truncate");
  writeCheckpointFile(f.path, kCheckpointKindMonteCarlo, w);

  std::vector<char> bytes;
  {
    std::ifstream in(f.path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 30u);
  bytes.resize(30);  // cut mid-payload
  {
    std::ofstream out(f.path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(readCheckpointFile(f.path, kCheckpointKindMonteCarlo), InvalidInputError);
}

TEST(Checkpoint, BadMagicRejected) {
  ScopedFile f("test_checkpoint_magic.vlsckpt");
  CheckpointWriter w;
  w.u32(1);
  writeCheckpointFile(f.path, kCheckpointKindMonteCarlo, w);

  std::vector<char> bytes;
  {
    std::ifstream in(f.path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  bytes[0] = 'X';
  {
    std::ofstream out(f.path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(readCheckpointFile(f.path, kCheckpointKindMonteCarlo), InvalidInputError);
}

TEST(Checkpoint, AtomicWriteLeavesNoTmpFile) {
  ScopedFile f("test_checkpoint_atomic.vlsckpt");
  CheckpointWriter w;
  w.u32(1);
  writeCheckpointFile(f.path, kCheckpointKindCharFarm, w);
  std::ifstream tmp(f.path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());
  EXPECT_TRUE(checkpointFileExists(f.path));
}

TEST(Checkpoint, Crc32KnownVector) {
  // The IEEE CRC-32 check value: crc32("123456789") == 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const uint8_t*>(s), 9), 0xCBF43926u);
}

}  // namespace
}  // namespace vls
