#include "io/liberty_writer.hpp"

#include <gtest/gtest.h>

#include "io/liberty_validate.hpp"

namespace vls {
namespace {

LibertyCellData sampleCell() {
  LibertyCellData cell;
  cell.cell_name = "SSTVS_08_12";
  cell.vddi = 0.8;
  cell.vddo = 1.2;
  cell.area_um2 = 5.8;
  cell.metrics.delay_rise = 84.4e-12;
  cell.metrics.delay_fall = 52.0e-12;
  cell.metrics.power_rise = 10e-6;
  cell.metrics.power_fall = 7e-6;
  cell.metrics.leakage_high = 0.9e-9;
  cell.metrics.leakage_low = 0.08e-9;
  cell.metrics.functional = true;
  return cell;
}

TEST(Liberty, StructureAndValues) {
  const std::string lib = writeLiberty({}, {sampleCell()});
  EXPECT_NE(lib.find("library (sstvs_ls_lib)"), std::string::npos);
  EXPECT_NE(lib.find("cell (SSTVS_08_12)"), std::string::npos);
  EXPECT_NE(lib.find("is_level_shifter : true;"), std::string::npos);
  EXPECT_NE(lib.find("values (\"84.4\")"), std::string::npos);  // ps
  EXPECT_NE(lib.find("values (\"52\")"), std::string::npos);
  EXPECT_NE(lib.find("function : \"!A\""), std::string::npos);
  EXPECT_NE(lib.find("negative_unate"), std::string::npos);
  EXPECT_NE(lib.find("area : 5.8;"), std::string::npos);
}

TEST(Liberty, NonInvertingCell) {
  LibertyCellData cell = sampleCell();
  cell.inverting = false;
  const std::string lib = writeLiberty({}, {cell});
  EXPECT_NE(lib.find("function : \"A\""), std::string::npos);
  EXPECT_NE(lib.find("positive_unate"), std::string::npos);
}

TEST(Liberty, BalancedBraces) {
  const std::string lib = writeLiberty({}, {sampleCell(), sampleCell()});
  // Second cell with a distinct name to avoid semantic duplicates is
  // not required for the brace check.
  int depth = 0;
  for (char c : lib) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Liberty, LeakagePowerStates) {
  const std::string lib = writeLiberty({}, {sampleCell()});
  // Output-high leakage (input low) maps to when "!A".
  EXPECT_NE(lib.find("when : \"!A\"; value : 1.08"), std::string::npos);  // 0.9nA * 1.2V
}

/// Synthetic NLDM cell: 2 slews x 3 loads, strictly increasing values.
LibertyCellData nldmCell() {
  LibertyCellData cell = sampleCell();
  cell.cell_name = "sstvs_nldm";
  LibertyNldmTable t;
  t.index_1 = {10.0, 30.0};
  t.index_2 = {0.5, 1.0, 2.0};
  t.values = {40.0, 50.0, 70.0, 55.0, 65.0, 85.0};
  cell.cell_rise = t;
  cell.cell_fall = t;
  cell.rise_transition = t;
  cell.fall_transition = t;
  cell.rise_power = t;
  cell.fall_power = t;
  return cell;
}

TEST(LibertyNldm, EmitsTemplatesAndTables) {
  const std::string lib = writeLiberty({}, {nldmCell()});
  EXPECT_NE(lib.find("lu_table_template (delay_template_2x3)"), std::string::npos);
  EXPECT_NE(lib.find("lu_table_template (power_template_2x3)"), std::string::npos);
  EXPECT_NE(lib.find("variable_1 : input_net_transition;"), std::string::npos);
  EXPECT_NE(lib.find("variable_2 : total_output_net_capacitance;"), std::string::npos);
  EXPECT_NE(lib.find("cell_rise (delay_template_2x3)"), std::string::npos);
  EXPECT_NE(lib.find("rise_power (power_template_2x3)"), std::string::npos);
}

TEST(LibertyValidate, AcceptsScalarAndNldmOutput) {
  const LibertyValidation scalar = validateLiberty(writeLiberty({}, {sampleCell()}));
  EXPECT_TRUE(scalar.ok()) << scalar.summary();
  EXPECT_EQ(scalar.cell_count, 1u);

  const LibertyValidation nldm = validateLiberty(writeLiberty({}, {nldmCell(), sampleCell()}));
  EXPECT_TRUE(nldm.ok()) << nldm.summary();
  EXPECT_EQ(nldm.cell_count, 2u);
  EXPECT_EQ(nldm.template_count, 2u);  // one delay + one power shape
  EXPECT_EQ(nldm.table_count, 10u);    // 6 NLDM + 4 scalar groups
}

TEST(LibertyValidate, RejectsUnbalancedBraces) {
  std::string lib = writeLiberty({}, {nldmCell()});
  lib.pop_back();  // drop trailing newline
  lib.pop_back();  // drop the library's closing brace
  EXPECT_FALSE(validateLiberty(lib).ok());
  EXPECT_FALSE(validateLiberty("library (x) { } }").ok());
}

TEST(LibertyValidate, RejectsNonMonotoneIndexes) {
  const std::string lib =
      "library (x) {\n"
      "  lu_table_template (t) {\n"
      "    variable_1 : input_net_transition;\n"
      "    variable_2 : total_output_net_capacitance;\n"
      "    index_1 (\"10, 5\");\n"
      "    index_2 (\"1, 2\");\n"
      "  }\n"
      "}\n";
  const LibertyValidation v = validateLiberty(lib);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.issues.front().message.find("not strictly increasing"), std::string::npos);
}

TEST(LibertyValidate, RejectsDimensionMismatch) {
  const std::string lib =
      "library (x) {\n"
      "  lu_table_template (t) {\n"
      "    index_1 (\"10, 30\");\n"
      "    index_2 (\"1, 2, 4\");\n"
      "  }\n"
      "  cell (c) { pin (Y) { timing () {\n"
      "    cell_rise (t) {\n"
      "      values (\"1, 2, 3\", \"4, 5\");\n"  // row 1 too short
      "    }\n"
      "  } } }\n"
      "}\n";
  EXPECT_FALSE(validateLiberty(lib).ok());
}

TEST(LibertyValidate, RejectsUnknownTemplate) {
  const std::string lib =
      "library (x) {\n"
      "  cell (c) { pin (Y) { timing () {\n"
      "    cell_fall (nope) { values (\"1, 2\"); }\n"
      "  } } }\n"
      "}\n";
  const LibertyValidation v = validateLiberty(lib);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.issues.front().message.find("unknown template"), std::string::npos);
}

TEST(LibertyValidate, ScalarTablesMustBeOneByOne) {
  const std::string lib =
      "library (x) {\n"
      "  cell (c) { pin (Y) { timing () {\n"
      "    cell_rise (scalar) { values (\"1, 2\"); }\n"
      "  } } }\n"
      "}\n";
  EXPECT_FALSE(validateLiberty(lib).ok());
}

// A corrupted generator (or a hole that leaked NaN instead of 0) must
// never ship: the validator rejects non-finite payloads wherever they
// appear, and negative values in delay/transition tables.

std::string nldmLib(const std::string& values, const char* group = "cell_rise") {
  return "library (x) {\n"
         "  lu_table_template (t) {\n"
         "    index_1 (\"10, 30\");\n"
         "    index_2 (\"1, 2\");\n"
         "  }\n"
         "  cell (c) { pin (Y) { timing () {\n"
         "    " +
         std::string(group) +
         " (t) {\n"
         "      values (" +
         values +
         ");\n"
         "    }\n"
         "  } } }\n"
         "}\n";
}

TEST(LibertyValidate, RejectsNanInValues) {
  const LibertyValidation v = validateLiberty(nldmLib("\"1, nan\", \"3, 4\""));
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.issues.front().message.find("non-finite"), std::string::npos);
}

TEST(LibertyValidate, RejectsInfInValues) {
  EXPECT_FALSE(validateLiberty(nldmLib("\"1, 2\", \"inf, 4\"")).ok());
  EXPECT_FALSE(validateLiberty(nldmLib("\"1, 2\", \"-inf, 4\"")).ok());
}

TEST(LibertyValidate, RejectsNegativeDelayAndTransition) {
  for (const char* group : {"cell_rise", "cell_fall", "rise_transition", "fall_transition"}) {
    const LibertyValidation v = validateLiberty(nldmLib("\"1, -2\", \"3, 4\"", group));
    ASSERT_FALSE(v.ok()) << group;
    EXPECT_NE(v.issues.front().message.find("negative delay/transition"), std::string::npos)
        << group;
  }
}

TEST(LibertyValidate, AllowsNegativePowerValues) {
  // Switching-energy tables may legitimately carry small negative
  // entries (quiet-slot integral of a near-cancelling current).
  EXPECT_TRUE(validateLiberty(nldmLib("\"1, -0.5\", \"3, 4\"", "rise_power")).ok());
}

TEST(LibertyValidate, ZeroDelayIsAcceptedAsAHole) {
  // Degrade-don't-abort holes store 0 at the failed point; 0 is a
  // valid (if degenerate) NLDM entry and must pass.
  EXPECT_TRUE(validateLiberty(nldmLib("\"0, 2\", \"3, 4\"")).ok());
}

TEST(LibertyValidate, RejectsNonFiniteTemplateIndex) {
  const std::string lib =
      "library (x) {\n"
      "  lu_table_template (t) {\n"
      "    index_1 (\"10, inf\");\n"
      "    index_2 (\"1, 2\");\n"
      "  }\n"
      "}\n";
  const LibertyValidation v = validateLiberty(lib);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.issues.front().message.find("non-finite"), std::string::npos);
}

TEST(LibertyValidate, RejectsNanTableIndex) {
  const std::string lib =
      "library (x) {\n"
      "  lu_table_template (t) {\n"
      "    index_1 (\"10, 30\");\n"
      "    index_2 (\"1, 2\");\n"
      "  }\n"
      "  cell (c) { pin (Y) { timing () {\n"
      "    cell_rise (t) {\n"
      "      index_1 (\"nan, 30\");\n"
      "      values (\"1, 2\", \"3, 4\");\n"
      "    }\n"
      "  } } }\n"
      "}\n";
  EXPECT_FALSE(validateLiberty(lib).ok());
}

}  // namespace
}  // namespace vls
