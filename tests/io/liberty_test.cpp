#include "io/liberty_writer.hpp"

#include <gtest/gtest.h>

namespace vls {
namespace {

LibertyCellData sampleCell() {
  LibertyCellData cell;
  cell.cell_name = "SSTVS_08_12";
  cell.vddi = 0.8;
  cell.vddo = 1.2;
  cell.area_um2 = 5.8;
  cell.metrics.delay_rise = 84.4e-12;
  cell.metrics.delay_fall = 52.0e-12;
  cell.metrics.power_rise = 10e-6;
  cell.metrics.power_fall = 7e-6;
  cell.metrics.leakage_high = 0.9e-9;
  cell.metrics.leakage_low = 0.08e-9;
  cell.metrics.functional = true;
  return cell;
}

TEST(Liberty, StructureAndValues) {
  const std::string lib = writeLiberty({}, {sampleCell()});
  EXPECT_NE(lib.find("library (sstvs_ls_lib)"), std::string::npos);
  EXPECT_NE(lib.find("cell (SSTVS_08_12)"), std::string::npos);
  EXPECT_NE(lib.find("is_level_shifter : true;"), std::string::npos);
  EXPECT_NE(lib.find("values (\"84.4\")"), std::string::npos);  // ps
  EXPECT_NE(lib.find("values (\"52\")"), std::string::npos);
  EXPECT_NE(lib.find("function : \"!A\""), std::string::npos);
  EXPECT_NE(lib.find("negative_unate"), std::string::npos);
  EXPECT_NE(lib.find("area : 5.8;"), std::string::npos);
}

TEST(Liberty, NonInvertingCell) {
  LibertyCellData cell = sampleCell();
  cell.inverting = false;
  const std::string lib = writeLiberty({}, {cell});
  EXPECT_NE(lib.find("function : \"A\""), std::string::npos);
  EXPECT_NE(lib.find("positive_unate"), std::string::npos);
}

TEST(Liberty, BalancedBraces) {
  const std::string lib = writeLiberty({}, {sampleCell(), sampleCell()});
  // Second cell with a distinct name to avoid semantic duplicates is
  // not required for the brace check.
  int depth = 0;
  for (char c : lib) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Liberty, LeakagePowerStates) {
  const std::string lib = writeLiberty({}, {sampleCell()});
  // Output-high leakage (input low) maps to when "!A".
  EXPECT_NE(lib.find("when : \"!A\"; value : 1.08"), std::string::npos);  // 0.9nA * 1.2V
}

}  // namespace
}  // namespace vls
