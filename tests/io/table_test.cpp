#include "io/table.hpp"

#include <gtest/gtest.h>

#include "base/error.hpp"

namespace vls {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"Parameter", "Value"});
  t.addRow({"Delay Rise (ps)", "22.0"});
  t.addRow({"X", "1"});
  const std::string s = t.toString();
  // All lines have equal length (box alignment).
  size_t len = std::string::npos;
  size_t pos = 0;
  while (pos < s.size()) {
    const size_t nl = s.find('\n', pos);
    const size_t line_len = nl - pos;
    if (len == std::string::npos) len = line_len;
    EXPECT_EQ(line_len, len);
    pos = nl + 1;
  }
  EXPECT_NE(s.find("Delay Rise (ps)"), std::string::npos);
}

TEST(Table, RowArityEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.addRow({"only one"}), InvalidInputError);
  EXPECT_THROW(Table empty({}), InvalidInputError);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::fmt(1.23456, 3), "1.23");
  EXPECT_EQ(Table::fmtScaled(22.0e-12, 1e-12, 1), "22.0");
  EXPECT_EQ(Table::fmtScaled(20.8e-9, 1e-9, 1), "20.8");
  EXPECT_EQ(Table::fmtScaled(4.47e-12, 1e-12, 2), "4.47");
}

TEST(Table, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.addRow({"x"});
  t.addRow({"y"});
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace vls
