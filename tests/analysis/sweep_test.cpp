#include "analysis/sweep.hpp"

#include <gtest/gtest.h>

namespace vls {
namespace {

TEST(Sweep, GridShape) {
  HarnessConfig base;
  base.kind = ShifterKind::Sstvs;
  Sweep2dConfig cfg;
  cfg.v_min = 0.8;
  cfg.v_max = 1.2;
  cfg.step = 0.4;
  const Sweep2dResult r = sweepSupplies(base, cfg);
  ASSERT_EQ(r.vddi_axis.size(), 2u);
  ASSERT_EQ(r.vddo_axis.size(), 2u);
  ASSERT_EQ(r.points.size(), 4u);
  EXPECT_DOUBLE_EQ(r.at(0, 1).vddi, 0.8);
  EXPECT_DOUBLE_EQ(r.at(0, 1).vddo, 1.2);
  EXPECT_DOUBLE_EQ(r.at(1, 0).vddi, 1.2);
  EXPECT_DOUBLE_EQ(r.at(1, 0).vddo, 0.8);
}

TEST(Sweep, ThreadCountInvariant) {
  // Grid results land in pre-sized row-major slots, so the sweep is
  // bit-identical for any worker count.
  HarnessConfig base;
  base.kind = ShifterKind::Sstvs;
  Sweep2dConfig cfg;
  cfg.v_min = 0.9;
  cfg.v_max = 1.1;
  cfg.step = 0.2;
  cfg.threads = 1;
  const Sweep2dResult serial = sweepSupplies(base, cfg);
  cfg.threads = 4;
  const Sweep2dResult parallel = sweepSupplies(base, cfg);
  ASSERT_EQ(serial.points.size(), parallel.points.size());
  for (size_t i = 0; i < serial.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.points[i].vddi, parallel.points[i].vddi);
    EXPECT_DOUBLE_EQ(serial.points[i].vddo, parallel.points[i].vddo);
    EXPECT_DOUBLE_EQ(serial.points[i].metrics.delay_rise, parallel.points[i].metrics.delay_rise);
    EXPECT_DOUBLE_EQ(serial.points[i].metrics.delay_fall, parallel.points[i].metrics.delay_fall);
    EXPECT_EQ(serial.points[i].metrics.functional, parallel.points[i].metrics.functional);
  }
}

TEST(Sweep, ProgressCallbackFires) {
  HarnessConfig base;
  Sweep2dConfig cfg;
  cfg.v_min = 1.0;
  cfg.v_max = 1.2;
  cfg.step = 0.2;
  size_t calls = 0;
  size_t last_total = 0;
  cfg.on_point = [&](const SweepPoint&, size_t, size_t total) {
    ++calls;
    last_total = total;
  };
  const Sweep2dResult r = sweepSupplies(base, cfg);
  EXPECT_EQ(calls, r.points.size());
  EXPECT_EQ(last_total, r.points.size());
}

TEST(Sweep, BadGridThrows) {
  HarnessConfig base;
  Sweep2dConfig cfg;
  cfg.step = 0.0;
  EXPECT_THROW(sweepSupplies(base, cfg), InvalidInputError);
  cfg.step = 0.1;
  cfg.v_min = 1.2;
  cfg.v_max = 0.8;
  EXPECT_THROW(sweepSupplies(base, cfg), InvalidInputError);
}

TEST(Sweep, AllPointsFunctionalOnCoarseGrid) {
  // Paper Section 4: the SS-TVS converts correctly for ALL VDDI/VDDO
  // combinations in [0.8, 1.4] V. Verified on the full grid (5 mV in
  // the paper, coarse here for test time; bench_fig8 refines).
  HarnessConfig base;
  base.kind = ShifterKind::Sstvs;
  Sweep2dConfig cfg;
  cfg.v_min = 0.8;
  cfg.v_max = 1.4;
  cfg.step = 0.3;
  const Sweep2dResult r = sweepSupplies(base, cfg);
  EXPECT_EQ(r.functionalCount(), r.points.size());
}

TEST(Sweep, DelaysVarySmoothly) {
  // Neighbouring grid points must not jump by more than 2x (paper:
  // "delays change smoothly with changing VDDI and VDDO").
  HarnessConfig base;
  base.kind = ShifterKind::Sstvs;
  Sweep2dConfig cfg;
  cfg.v_min = 0.8;
  cfg.v_max = 1.4;
  cfg.step = 0.2;
  const Sweep2dResult r = sweepSupplies(base, cfg);
  const size_t n = r.vddo_axis.size();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j + 1 < n; ++j) {
      const double a = r.at(i, j).metrics.delay_rise;
      const double b = r.at(i, j + 1).metrics.delay_rise;
      EXPECT_LT(std::max(a, b) / std::min(a, b), 2.0) << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace vls
