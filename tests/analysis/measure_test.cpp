#include "analysis/measure.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "numeric/interpolation.hpp"

#include "circuit/circuit.hpp"
#include "devices/passive.hpp"
#include "sim/simulator.hpp"

namespace vls {
namespace {

Signal triangle() {
  return Signal{{0.0, 1.0, 2.0, 3.0, 4.0}, {0.0, 1.0, 1.0, 0.0, 0.0}};
}

TEST(Measure, CrossTime) {
  const Signal s = triangle();
  const auto r = crossTime(s, 0.5, CrossDir::Rising);
  ASSERT_TRUE(r);
  EXPECT_DOUBLE_EQ(*r, 0.5);
  const auto f = crossTime(s, 0.5, CrossDir::Falling);
  ASSERT_TRUE(f);
  EXPECT_DOUBLE_EQ(*f, 2.5);
  EXPECT_FALSE(crossTime(s, 2.0, CrossDir::Rising).has_value());
}

TEST(Measure, PropagationDelay) {
  const Signal in{{0.0, 1.0, 2.0}, {0.0, 1.0, 1.0}};
  const Signal out{{0.0, 1.0, 1.5, 2.0}, {1.0, 1.0, 0.0, 0.0}};
  const auto d = propagationDelay(in, out, 0.5, CrossDir::Rising, 0.5, CrossDir::Falling);
  ASSERT_TRUE(d);
  EXPECT_DOUBLE_EQ(*d, 0.75);  // in crosses at 0.5; out falls through 0.5 at 1.25
}

TEST(Measure, PropagationDelayMissingEdge) {
  const Signal in{{0.0, 1.0}, {0.0, 0.0}};
  const Signal out{{0.0, 1.0}, {1.0, 1.0}};
  EXPECT_FALSE(
      propagationDelay(in, out, 0.5, CrossDir::Rising, 0.5, CrossDir::Falling).has_value());
}

TEST(Measure, Averages) {
  const Signal s = triangle();
  EXPECT_NEAR(averageValue(s, 0.0, 4.0), 2.0 / 4.0, 1e-12);
  EXPECT_NEAR(averageValue(s, 1.0, 2.0), 1.0, 1e-12);
  EXPECT_THROW(averageValue(s, 2.0, 2.0), InvalidInputError);
}

TEST(Measure, MinMax) {
  const Signal s = triangle();
  EXPECT_DOUBLE_EQ(maxValue(s, 0.0, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(minValue(s, 0.0, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(maxValue(s, 2.6, 4.0), interpLinear(s.time, s.value, 2.6));
}

TEST(Measure, TransitionTime) {
  const Signal s{{0.0, 1.0}, {0.0, 1.0}};
  const auto tr = transitionTime(s, 0.0, 1.0, CrossDir::Rising);
  ASSERT_TRUE(tr);
  EXPECT_NEAR(*tr, 0.8, 1e-12);  // 10% to 90% of a linear ramp
}

TEST(Measure, TransitionEnergyOfCapacitorCharge) {
  // Charging C to V through R draws E = C*V^2 from the supply (half
  // stored, half dissipated). Measure it as a transition energy.
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  PulseSpec p;
  p.v1 = 0;
  p.v2 = 1.0;
  p.delay = 0.5e-9;
  p.rise = p.fall = 1e-12;
  p.width = 1e-6;
  auto& v = c.add<VoltageSource>("v", a, kGround, Waveform::pulse(p));
  c.add<Resistor>("r", a, b, 1000.0);
  c.add<Capacitor>("cb", b, kGround, 1e-12);
  Simulator sim(c);
  const auto tr = sim.transient(8e-9, 4e-11);
  const double e = transitionEnergy(tr, v, 0.5e-9, 7e-9);
  EXPECT_NEAR(e, 1e-12 * 1.0 * 1.0, 0.05e-12);  // C*V^2 = 1 pJ
}

TEST(Measure, TransitionEnergyBaselineSubtraction) {
  // A purely resistive load shows static power only: with the baseline
  // subtracted the transition energy is ~0.
  Circuit c;
  const NodeId a = c.node("a");
  auto& v = c.add<VoltageSource>("v", a, kGround, 1.0);
  c.add<Resistor>("r", a, kGround, 1000.0);
  Simulator sim(c);
  const auto tr = sim.transient(2e-9, 1e-10);
  const double baseline = 1.0 * 1.0 / 1000.0;
  EXPECT_NEAR(transitionEnergy(tr, v, 0.5e-9, 1e-9, baseline), 0.0, 1e-17);
}

TEST(Measure, SupplyCurrentAndPower) {
  // 1 V source across 1 kOhm: delivers 1 mA, 1 mW.
  Circuit c;
  const NodeId a = c.node("a");
  auto& v = c.add<VoltageSource>("v", a, kGround, 1.0);
  c.add<Resistor>("r", a, kGround, 1000.0);
  Simulator sim(c);
  const auto tr = sim.transient(1e-9, 1e-10);
  const Signal i = supplyCurrent(tr, v);
  for (double val : i.value) EXPECT_NEAR(val, 1e-3, 1e-9);
  EXPECT_NEAR(averageSupplyPower(tr, v, 0.0, 1e-9), 1e-3, 1e-9);
  EXPECT_NEAR(deliveredCharge(tr, v, 0.0, 1e-9), 1e-12, 1e-16);
}

}  // namespace
}  // namespace vls
