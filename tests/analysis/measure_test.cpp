#include "analysis/measure.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "numeric/interpolation.hpp"

#include "circuit/circuit.hpp"
#include "devices/passive.hpp"
#include "sim/simulator.hpp"

namespace vls {
namespace {

Signal triangle() {
  return Signal{{0.0, 1.0, 2.0, 3.0, 4.0}, {0.0, 1.0, 1.0, 0.0, 0.0}};
}

TEST(Measure, CrossTime) {
  const Signal s = triangle();
  const auto r = crossTime(s, 0.5, CrossDir::Rising);
  ASSERT_TRUE(r);
  EXPECT_DOUBLE_EQ(*r, 0.5);
  const auto f = crossTime(s, 0.5, CrossDir::Falling);
  ASSERT_TRUE(f);
  EXPECT_DOUBLE_EQ(*f, 2.5);
  EXPECT_FALSE(crossTime(s, 2.0, CrossDir::Rising).has_value());
}

TEST(Measure, CrossingExactlyOnSamplePoint) {
  // A waveform that lands exactly on the threshold at a sample point:
  // the crossing belongs to the *arriving* segment (y0 < level,
  // y1 >= level) and is reported once, at that sample time — the
  // departing segment starts at the level and must not double-report.
  const Signal s{{0.0, 1.0, 2.0}, {0.0, 0.5, 1.0}};
  const auto r = crossTime(s, 0.5, CrossDir::Rising);
  ASSERT_TRUE(r);
  EXPECT_DOUBLE_EQ(*r, 1.0);
  EXPECT_EQ(crossTimes(s, 0.5, CrossDir::Rising).size(), 1u);

  // Same contract on a falling edge through an exact sample.
  const Signal f{{0.0, 1.0, 2.0}, {1.0, 0.5, 0.0}};
  const auto rf = crossTime(f, 0.5, CrossDir::Falling);
  ASSERT_TRUE(rf);
  EXPECT_DOUBLE_EQ(*rf, 1.0);
  EXPECT_EQ(crossTimes(f, 0.5, CrossDir::Falling).size(), 1u);

  // `from` exactly at the crossing still finds it (>= semantics).
  const auto at_from = crossTime(s, 0.5, CrossDir::Rising, 1.0);
  ASSERT_TRUE(at_from);
  EXPECT_DOUBLE_EQ(*at_from, 1.0);
}

TEST(Measure, NeverCrossingWaveform) {
  // Strictly below the level: no crossing in any direction.
  const Signal low{{0.0, 1.0, 2.0}, {0.0, 0.3, 0.1}};
  EXPECT_FALSE(crossTime(low, 0.5, CrossDir::Rising).has_value());
  EXPECT_FALSE(crossTime(low, 0.5, CrossDir::Falling).has_value());
  EXPECT_TRUE(crossTimes(low, 0.5, CrossDir::Either).empty());

  // Sitting exactly AT the level is not a crossing either: a rising
  // crossing needs y0 strictly below, a falling one y0 strictly above.
  const Signal flat{{0.0, 1.0, 2.0}, {0.5, 0.5, 0.5}};
  EXPECT_FALSE(crossTime(flat, 0.5, CrossDir::Rising).has_value());
  EXPECT_FALSE(crossTime(flat, 0.5, CrossDir::Falling).has_value());
}

TEST(Measure, NonMonotonicDoubleCrossing) {
  // Up-down-up: two rising crossings, one falling. crossTime reports
  // the FIRST crossing at/after `from`; crossTimes reports them all in
  // time order.
  const Signal s{{0.0, 1.0, 2.0, 3.0}, {0.0, 1.0, 0.0, 1.0}};
  const auto first = crossTime(s, 0.5, CrossDir::Rising);
  ASSERT_TRUE(first);
  EXPECT_DOUBLE_EQ(*first, 0.5);

  const std::vector<double> rises = crossTimes(s, 0.5, CrossDir::Rising);
  ASSERT_EQ(rises.size(), 2u);
  EXPECT_DOUBLE_EQ(rises[0], 0.5);
  EXPECT_DOUBLE_EQ(rises[1], 2.5);

  const std::vector<double> falls = crossTimes(s, 0.5, CrossDir::Falling);
  ASSERT_EQ(falls.size(), 1u);
  EXPECT_DOUBLE_EQ(falls[0], 1.5);

  // `from` past the first crossing selects the second.
  const auto second = crossTime(s, 0.5, CrossDir::Rising, 1.0);
  ASSERT_TRUE(second);
  EXPECT_DOUBLE_EQ(*second, 2.5);

  // Either-direction view: rising, falling, rising in order.
  const std::vector<double> all = crossTimes(s, 0.5, CrossDir::Either);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_DOUBLE_EQ(all[0], 0.5);
  EXPECT_DOUBLE_EQ(all[1], 1.5);
  EXPECT_DOUBLE_EQ(all[2], 2.5);
}

TEST(Measure, PropagationDelay) {
  const Signal in{{0.0, 1.0, 2.0}, {0.0, 1.0, 1.0}};
  const Signal out{{0.0, 1.0, 1.5, 2.0}, {1.0, 1.0, 0.0, 0.0}};
  const auto d = propagationDelay(in, out, 0.5, CrossDir::Rising, 0.5, CrossDir::Falling);
  ASSERT_TRUE(d);
  EXPECT_DOUBLE_EQ(*d, 0.75);  // in crosses at 0.5; out falls through 0.5 at 1.25
}

TEST(Measure, PropagationDelayMissingEdge) {
  const Signal in{{0.0, 1.0}, {0.0, 0.0}};
  const Signal out{{0.0, 1.0}, {1.0, 1.0}};
  EXPECT_FALSE(
      propagationDelay(in, out, 0.5, CrossDir::Rising, 0.5, CrossDir::Falling).has_value());
}

TEST(Measure, Averages) {
  const Signal s = triangle();
  EXPECT_NEAR(averageValue(s, 0.0, 4.0), 2.0 / 4.0, 1e-12);
  EXPECT_NEAR(averageValue(s, 1.0, 2.0), 1.0, 1e-12);
  EXPECT_THROW(averageValue(s, 2.0, 2.0), InvalidInputError);
}

TEST(Measure, MinMax) {
  const Signal s = triangle();
  EXPECT_DOUBLE_EQ(maxValue(s, 0.0, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(minValue(s, 0.0, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(maxValue(s, 2.6, 4.0), interpLinear(s.time, s.value, 2.6));
}

TEST(Measure, TransitionTime) {
  const Signal s{{0.0, 1.0}, {0.0, 1.0}};
  const auto tr = transitionTime(s, 0.0, 1.0, CrossDir::Rising);
  ASSERT_TRUE(tr);
  EXPECT_NEAR(*tr, 0.8, 1e-12);  // 10% to 90% of a linear ramp
}

TEST(Measure, TransitionEnergyOfCapacitorCharge) {
  // Charging C to V through R draws E = C*V^2 from the supply (half
  // stored, half dissipated). Measure it as a transition energy.
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  PulseSpec p;
  p.v1 = 0;
  p.v2 = 1.0;
  p.delay = 0.5e-9;
  p.rise = p.fall = 1e-12;
  p.width = 1e-6;
  auto& v = c.add<VoltageSource>("v", a, kGround, Waveform::pulse(p));
  c.add<Resistor>("r", a, b, 1000.0);
  c.add<Capacitor>("cb", b, kGround, 1e-12);
  Simulator sim(c);
  const auto tr = sim.transient(8e-9, 4e-11);
  const double e = transitionEnergy(tr, v, 0.5e-9, 7e-9);
  EXPECT_NEAR(e, 1e-12 * 1.0 * 1.0, 0.05e-12);  // C*V^2 = 1 pJ
}

TEST(Measure, TransitionEnergyBaselineSubtraction) {
  // A purely resistive load shows static power only: with the baseline
  // subtracted the transition energy is ~0.
  Circuit c;
  const NodeId a = c.node("a");
  auto& v = c.add<VoltageSource>("v", a, kGround, 1.0);
  c.add<Resistor>("r", a, kGround, 1000.0);
  Simulator sim(c);
  const auto tr = sim.transient(2e-9, 1e-10);
  const double baseline = 1.0 * 1.0 / 1000.0;
  EXPECT_NEAR(transitionEnergy(tr, v, 0.5e-9, 1e-9, baseline), 0.0, 1e-17);
}

TEST(Measure, SupplyCurrentAndPower) {
  // 1 V source across 1 kOhm: delivers 1 mA, 1 mW.
  Circuit c;
  const NodeId a = c.node("a");
  auto& v = c.add<VoltageSource>("v", a, kGround, 1.0);
  c.add<Resistor>("r", a, kGround, 1000.0);
  Simulator sim(c);
  const auto tr = sim.transient(1e-9, 1e-10);
  const Signal i = supplyCurrent(tr, v);
  for (double val : i.value) EXPECT_NEAR(val, 1e-3, 1e-9);
  EXPECT_NEAR(averageSupplyPower(tr, v, 0.0, 1e-9), 1e-3, 1e-9);
  EXPECT_NEAR(deliveredCharge(tr, v, 0.0, 1e-9), 1e-12, 1e-16);
}

}  // namespace
}  // namespace vls
