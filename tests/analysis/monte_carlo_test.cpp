#include "analysis/monte_carlo.hpp"

#include <gtest/gtest.h>

namespace vls {
namespace {

MonteCarloConfig smallMc(int samples = 12) {
  MonteCarloConfig mc;
  mc.samples = samples;
  mc.seed = 7;
  return mc;
}

TEST(MonteCarlo, ProducesRequestedSamples) {
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  const MonteCarloResult r = runMonteCarlo(h, smallMc());
  EXPECT_EQ(r.samples, 12);
  EXPECT_EQ(r.delay_rise.size(), 12u);
  EXPECT_EQ(r.leakage_low.size(), 12u);
  EXPECT_EQ(r.functional_failures, 0);
}

TEST(MonteCarlo, DeterministicBySeed) {
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  const MonteCarloResult a = runMonteCarlo(h, smallMc(5));
  const MonteCarloResult b = runMonteCarlo(h, smallMc(5));
  ASSERT_EQ(a.delay_rise.size(), b.delay_rise.size());
  for (size_t i = 0; i < a.delay_rise.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.delay_rise[i], b.delay_rise[i]);
  }
}

TEST(MonteCarlo, DifferentSeedsDiffer) {
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  MonteCarloConfig m1 = smallMc(5);
  MonteCarloConfig m2 = smallMc(5);
  m2.seed = 8;
  const MonteCarloResult a = runMonteCarlo(h, m1);
  const MonteCarloResult b = runMonteCarlo(h, m2);
  bool any_diff = false;
  for (size_t i = 0; i < a.delay_rise.size(); ++i) {
    if (a.delay_rise[i] != b.delay_rise[i]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(MonteCarlo, VariationSpreadsDelays) {
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  const MonteCarloResult r = runMonteCarlo(h, smallMc(16));
  const Summary s = r.delayRise();
  EXPECT_GT(s.stddev, 0.0);
  // Sigma should be a modest fraction of the mean for 3.34% variations.
  EXPECT_LT(s.stddev, 0.5 * s.mean);
}

TEST(MonteCarlo, ZeroVariationCollapsesSpread) {
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  MonteCarloConfig mc = smallMc(4);
  mc.variation.sigma_w = 0.0;
  mc.variation.sigma_l = 0.0;
  mc.variation.sigma_vt_rel = 0.0;
  const MonteCarloResult r = runMonteCarlo(h, mc);
  EXPECT_NEAR(r.delayRise().stddev, 0.0, 1e-18);
  EXPECT_NEAR(r.leakageHigh().stddev, 0.0, 1e-18);
}

TEST(MonteCarlo, PaperSigmas) {
  const VariationSpec v{};
  EXPECT_NEAR(v.sigma_w, 0.0334 * 90e-9, 1e-12);
  EXPECT_NEAR(v.sigma_l, 0.0334 * 90e-9, 1e-12);
  // 3 sigma = 10% of nominal VT.
  EXPECT_NEAR(3.0 * v.sigma_vt_rel, 0.1, 2e-3);
}

}  // namespace
}  // namespace vls
