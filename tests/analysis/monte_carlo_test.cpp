#include "analysis/monte_carlo.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "base/job_control.hpp"

namespace vls {
namespace {

MonteCarloConfig smallMc(int samples = 12) {
  MonteCarloConfig mc;
  mc.samples = samples;
  mc.seed = 7;
  return mc;
}

TEST(MonteCarlo, ProducesRequestedSamples) {
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  const MonteCarloResult r = runMonteCarlo(h, smallMc());
  EXPECT_EQ(r.samples, 12);
  EXPECT_EQ(r.delay_rise.size(), 12u);
  EXPECT_EQ(r.leakage_low.size(), 12u);
  EXPECT_EQ(r.functional_failures, 0);
}

TEST(MonteCarlo, DeterministicBySeed) {
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  const MonteCarloResult a = runMonteCarlo(h, smallMc(5));
  const MonteCarloResult b = runMonteCarlo(h, smallMc(5));
  ASSERT_EQ(a.delay_rise.size(), b.delay_rise.size());
  for (size_t i = 0; i < a.delay_rise.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.delay_rise[i], b.delay_rise[i]);
  }
}

TEST(MonteCarlo, DifferentSeedsDiffer) {
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  MonteCarloConfig m1 = smallMc(5);
  MonteCarloConfig m2 = smallMc(5);
  m2.seed = 8;
  const MonteCarloResult a = runMonteCarlo(h, m1);
  const MonteCarloResult b = runMonteCarlo(h, m2);
  bool any_diff = false;
  for (size_t i = 0; i < a.delay_rise.size(); ++i) {
    if (a.delay_rise[i] != b.delay_rise[i]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(MonteCarlo, VariationSpreadsDelays) {
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  const MonteCarloResult r = runMonteCarlo(h, smallMc(16));
  const Summary s = r.delayRise();
  EXPECT_GT(s.stddev, 0.0);
  // Sigma should be a modest fraction of the mean for 3.34% variations.
  EXPECT_LT(s.stddev, 0.5 * s.mean);
}

TEST(MonteCarlo, ZeroVariationCollapsesSpread) {
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  MonteCarloConfig mc = smallMc(4);
  mc.variation.sigma_w = 0.0;
  mc.variation.sigma_l = 0.0;
  mc.variation.sigma_vt_rel = 0.0;
  const MonteCarloResult r = runMonteCarlo(h, mc);
  EXPECT_NEAR(r.delayRise().stddev, 0.0, 1e-18);
  EXPECT_NEAR(r.leakageHigh().stddev, 0.0, 1e-18);
}

void expectBitIdentical(const MonteCarloResult& a, const MonteCarloResult& b) {
  ASSERT_EQ(a.delay_rise.size(), b.delay_rise.size());
  for (size_t i = 0; i < a.delay_rise.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.delay_rise[i], b.delay_rise[i]);
    EXPECT_DOUBLE_EQ(a.delay_fall[i], b.delay_fall[i]);
    EXPECT_DOUBLE_EQ(a.power_rise[i], b.power_rise[i]);
    EXPECT_DOUBLE_EQ(a.power_fall[i], b.power_fall[i]);
    EXPECT_DOUBLE_EQ(a.leakage_high[i], b.leakage_high[i]);
    EXPECT_DOUBLE_EQ(a.leakage_low[i], b.leakage_low[i]);
  }
  EXPECT_EQ(a.failed_samples, b.failed_samples);
  EXPECT_EQ(a.functional_failures, b.functional_failures);
}

TEST(MonteCarlo, ThreadCountInvariant) {
  // The determinism contract: VLS_THREADS=1 and VLS_THREADS=4 must give
  // bit-identical per-sample metric vectors for the same seed.
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  setenv("VLS_THREADS", "1", 1);
  const MonteCarloResult serial = runMonteCarlo(h, smallMc(8));
  setenv("VLS_THREADS", "4", 1);
  const MonteCarloResult parallel = runMonteCarlo(h, smallMc(8));
  unsetenv("VLS_THREADS");
  expectBitIdentical(serial, parallel);
}

TEST(MonteCarlo, ExplicitThreadOverrideInvariant) {
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  MonteCarloConfig one = smallMc(6);
  one.threads = 1;
  MonteCarloConfig three = smallMc(6);
  three.threads = 3;
  expectBitIdentical(runMonteCarlo(h, one), runMonteCarlo(h, three));
}

TEST(MonteCarlo, RecordsFailedSampleIndices) {
  // The Khan SS-VS cannot shift this far down: every sample is
  // non-functional by a wide margin, and each sample id must be recorded.
  HarnessConfig h;
  h.kind = ShifterKind::SsvsKhan;
  h.vddi = 1.4;
  h.vddo = 0.5;
  const MonteCarloResult r = runMonteCarlo(h, smallMc(4));
  EXPECT_EQ(r.functional_failures, 4);
  EXPECT_EQ(r.simulation_errors, 0);
  ASSERT_EQ(r.failed_samples.size(), 4u);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(r.failed_samples[s].id, s);
    EXPECT_EQ(r.failed_samples[s].kind, FailureKind::NonFunctional);
  }
}

TEST(MonteCarlo, NoFailuresMeansEmptyFailedSamples) {
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  const MonteCarloResult r = runMonteCarlo(h, smallMc(5));
  EXPECT_TRUE(r.failed_samples.empty());
  // Metric vectors stay index-aligned with sample ids.
  EXPECT_EQ(r.delay_rise.size(), 5u);
}

TEST(MonteCarlo, EnsembleMatchesScalarSummaries) {
  // Acceptance contract for the lockstep ensemble engine: with the same
  // seed, ensemble-mode summary statistics (mean/sigma of delay, power
  // and leakage) must match the scalar reference within 0.5% of the
  // metric scale, and the failed-sample ids must be identical.
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  // Compare at converged time resolution: the lockstep engine advances
  // on the min-dt of its lanes, so at coarse settings the two modes
  // carry different discretization error (both within tran tolerance,
  // but not within 0.5% of each other). Tightening dt_max and the LTE
  // tolerance makes both modes converge to the same waveforms.
  h.dt_max = 10e-12;
  h.sim.tran_reltol = 5e-4;
  MonteCarloConfig scalar = smallMc(16);
  scalar.threads = 1;
  MonteCarloConfig ens = scalar;
  ens.ensemble_width = 8;
  const MonteCarloResult a = runMonteCarlo(h, scalar);
  const MonteCarloResult b = runMonteCarlo(h, ens);

  EXPECT_EQ(a.failed_samples, b.failed_samples);
  EXPECT_EQ(a.failedIds(), b.failedIds());
  EXPECT_EQ(a.functional_failures, b.functional_failures);
  EXPECT_EQ(a.simulation_errors, b.simulation_errors);
  ASSERT_EQ(a.delay_rise.size(), b.delay_rise.size());

  auto close = [](const char* what, Summary s, Summary e) {
    const double scale = std::abs(s.mean);
    EXPECT_NEAR(e.mean, s.mean, 0.005 * scale) << what << " mean";
    EXPECT_NEAR(e.stddev, s.stddev, 0.005 * scale) << what << " sigma";
  };
  close("delay_rise", a.delayRise(), b.delayRise());
  close("delay_fall", a.delayFall(), b.delayFall());
  close("power_rise", a.powerRise(), b.powerRise());
  close("power_fall", a.powerFall(), b.powerFall());
  close("leakage_high", a.leakageHigh(), b.leakageHigh());
  close("leakage_low", a.leakageLow(), b.leakageLow());
}

TEST(MonteCarlo, EnsembleWidthInvariantFailureIds) {
  // A config where every sample is non-functional: the ensemble path
  // must report exactly the same ids and kinds as the scalar path.
  HarnessConfig h;
  h.kind = ShifterKind::SsvsKhan;
  h.vddi = 1.4;
  h.vddo = 0.5;
  MonteCarloConfig scalar = smallMc(6);
  MonteCarloConfig ens = smallMc(6);
  ens.ensemble_width = 4;
  const MonteCarloResult a = runMonteCarlo(h, scalar);
  const MonteCarloResult b = runMonteCarlo(h, ens);
  EXPECT_EQ(a.failed_samples, b.failed_samples);
  EXPECT_EQ(b.functional_failures, 6);
  EXPECT_EQ(b.simulation_errors, 0);
}

TEST(MonteCarlo, EnsembleWidthClampAndOddBatch) {
  // Widths above kMaxLanes clamp instead of throwing, and a sample
  // count that does not divide the width still yields every sample.
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  MonteCarloConfig mc = smallMc(5);
  mc.ensemble_width = 1000;
  const MonteCarloResult r = runMonteCarlo(h, mc);
  EXPECT_EQ(r.samples, 5);
  EXPECT_EQ(r.delay_rise.size(), 5u);
  EXPECT_EQ(r.functional_failures, 0);
}

TEST(MonteCarloFault, RecoveredFaultLeavesNoFailureRecord) {
  // A single-fire Newton fault kills the direct rung of one sample's
  // operating point; the gmin rung rescues it. The sample must produce
  // metrics and no failure record — in both engine modes.
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  MonteCarloConfig scalar = smallMc(4);
  scalar.fault_sample = 1;
  scalar.fault.fail_newton_at_iteration = 0;
  scalar.fault.stage_mask = recoveryStageBit(RecoveryStage::DirectNewton);
  scalar.fault.max_fires = 1;
  MonteCarloConfig ens = scalar;
  ens.ensemble_width = 4;
  const MonteCarloResult a = runMonteCarlo(h, scalar);
  const MonteCarloResult b = runMonteCarlo(h, ens);
  EXPECT_TRUE(a.failed_samples.empty());
  EXPECT_EQ(a.failed_samples, b.failed_samples);
  EXPECT_EQ(a.simulation_errors, 0);
  EXPECT_EQ(b.simulation_errors, 0);
  EXPECT_EQ(a.delay_rise.size(), 4u);
  EXPECT_EQ(b.delay_rise.size(), 4u);
}

TEST(MonteCarloFault, UnrecoverableFaultAttributedIdenticallyInBothModes) {
  // An unlimited pivot fault defeats every ladder rung for one sample.
  // Scalar and ensemble runs must record exactly the same failure:
  // same id, same deepest stage, same implicated node.
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  MonteCarloConfig scalar = smallMc(4);
  scalar.fault_sample = 2;
  scalar.fault.zero_pivot_node = "out";
  MonteCarloConfig ens = scalar;
  ens.ensemble_width = 4;
  const MonteCarloResult a = runMonteCarlo(h, scalar);
  const MonteCarloResult b = runMonteCarlo(h, ens);

  ASSERT_EQ(a.failed_samples.size(), 1u);
  const SampleFailure& f = a.failed_samples[0];
  EXPECT_EQ(f.id, 2);
  EXPECT_EQ(f.kind, FailureKind::SimulationError);
  EXPECT_EQ(f.stage, "pseudo-transient");  // deepest rung attempted
  EXPECT_EQ(f.node, "out");
  EXPECT_FALSE(f.message.empty());
  EXPECT_EQ(a.simulation_errors, 1);
  // The comparison is on full records: attribution strings included.
  EXPECT_EQ(a.failed_samples, b.failed_samples);
  // The healthy samples still produced metrics.
  EXPECT_EQ(a.delay_rise.size(), 3u);
  EXPECT_EQ(b.delay_rise.size(), 3u);
}

TEST(MonteCarloFault, EnsembleSmokeRecordsExactlyOneFailure) {
  // CI smoke contract: a 32-sample width-8 ensemble run with one
  // sabotaged sample yields exactly one failed_samples entry, fully
  // attributed, and 31 clean metric entries.
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  MonteCarloConfig mc = smallMc(32);
  mc.ensemble_width = 8;
  mc.fault_sample = 13;
  mc.fault.zero_pivot_node = "out";
  const MonteCarloResult r = runMonteCarlo(h, mc);
  ASSERT_EQ(r.failed_samples.size(), 1u);
  EXPECT_EQ(r.failed_samples[0].id, 13);
  EXPECT_EQ(r.failed_samples[0].kind, FailureKind::SimulationError);
  EXPECT_FALSE(r.failed_samples[0].stage.empty());
  EXPECT_EQ(r.failed_samples[0].node, "out");
  EXPECT_EQ(r.simulation_errors, 1);
  EXPECT_EQ(r.functional_failures, 0);
  EXPECT_EQ(r.delay_rise.size(), 31u);
}

TEST(MonteCarlo, PaperSigmas) {
  const VariationSpec v{};
  EXPECT_NEAR(v.sigma_w, 0.0334 * 90e-9, 1e-12);
  EXPECT_NEAR(v.sigma_l, 0.0334 * 90e-9, 1e-12);
  // 3 sigma = 10% of nominal VT.
  EXPECT_NEAR(3.0 * v.sigma_vt_rel, 0.1, 2e-3);
}

/// Relative closeness of a streaming summary to the exact one on the
/// statistics the P2/Welford accumulators estimate.
void expectSummariesClose(const char* what, const Summary& exact, const Summary& stream,
                          double rel_tol) {
  EXPECT_EQ(exact.count, stream.count) << what;
  auto near = [&](const char* stat, double e, double s) {
    const double scale = std::max(std::abs(e), std::abs(s));
    EXPECT_NEAR(s, e, rel_tol * scale + 1e-30) << what << " " << stat;
  };
  near("mean", exact.mean, stream.mean);
  near("stddev", exact.stddev, stream.stddev);
  near("p05", exact.p05, stream.p05);
  near("median", exact.median, stream.median);
  near("p95", exact.p95, stream.p95);
  // Welford tracks extremes exactly.
  EXPECT_DOUBLE_EQ(exact.min, stream.min) << what;
  EXPECT_DOUBLE_EQ(exact.max, stream.max) << what;
}

TEST(MonteCarloStreaming, MatchesExactOnRealHarness) {
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  MonteCarloConfig mc = smallMc(12);
  const MonteCarloResult exact = runMonteCarlo(h, mc);
  mc.streaming = true;
  const MonteCarloResult stream = runMonteCarlo(h, mc);
  EXPECT_FALSE(exact.streaming);
  EXPECT_TRUE(stream.streaming);
  EXPECT_TRUE(stream.delay_rise.empty());  // never materialized
  EXPECT_EQ(stream.failed_samples, exact.failed_samples);
  EXPECT_EQ(stream.functional_failures, exact.functional_failures);
  EXPECT_EQ(stream.simulation_errors, exact.simulation_errors);
  // 12 observations is deep P2-estimator territory: mean/extremes are
  // exact, quantiles are marker estimates.
  EXPECT_DOUBLE_EQ(stream.delayRise().mean, exact.delayRise().mean);
  EXPECT_DOUBLE_EQ(stream.delayRise().min, exact.delayRise().min);
  EXPECT_DOUBLE_EQ(stream.delayRise().max, exact.delayRise().max);
  expectSummariesClose("delay_rise", exact.delayRise(), stream.delayRise(), 0.05);
}

// The 10^5-sample acceptance smoke on the surrogate evaluator:
// streaming summaries agree with the exact path within 1%, and
// failed_samples is bit-identical across {threads, streaming}.
TEST(MonteCarloStreaming, SurrogateStreamingMatchesExactAt100k) {
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  MonteCarloConfig mc;
  mc.samples = 100000;
  mc.seed = 20080310;
  mc.evaluator = makeSurrogateEvaluator(h);

  mc.threads = 1;
  const MonteCarloResult exact = runMonteCarlo(h, mc);
  mc.streaming = true;
  const MonteCarloResult stream1 = runMonteCarlo(h, mc);
  mc.threads = 4;
  const MonteCarloResult stream4 = runMonteCarlo(h, mc);

  // The surrogate's deep-VT-tail failure region fires at ~0.4%: enough
  // to make the bit-identity assertion meaningful.
  EXPECT_GT(exact.functional_failures, 100);
  EXPECT_LT(exact.functional_failures, 2000);
  EXPECT_EQ(stream1.failed_samples, exact.failed_samples);
  EXPECT_EQ(stream4.failed_samples, exact.failed_samples);
  EXPECT_EQ(stream4.functional_failures, exact.functional_failures);

  expectSummariesClose("delay_rise", exact.delayRise(), stream4.delayRise(), 0.01);
  expectSummariesClose("delay_fall", exact.delayFall(), stream4.delayFall(), 0.01);
  expectSummariesClose("power_rise", exact.powerRise(), stream4.powerRise(), 0.01);
  expectSummariesClose("power_fall", exact.powerFall(), stream4.powerFall(), 0.01);
  expectSummariesClose("leakage_high", exact.leakageHigh(), stream4.leakageHigh(), 0.01);
  expectSummariesClose("leakage_low", exact.leakageLow(), stream4.leakageLow(), 0.01);
}

TEST(MonteCarlo, FailedSamplesInvariantAcrossThreadsWidthStreaming) {
  // Every sample non-functional on this config; the failure records
  // must be bit-identical for every {threads} x {width} x {streaming}
  // combination.
  HarnessConfig h;
  h.kind = ShifterKind::SsvsKhan;
  h.vddi = 1.4;
  h.vddo = 0.5;
  MonteCarloConfig ref_mc = smallMc(6);
  ref_mc.threads = 1;
  const MonteCarloResult ref = runMonteCarlo(h, ref_mc);
  ASSERT_EQ(ref.failed_samples.size(), 6u);
  for (const int threads : {1, 4}) {
    for (const int width : {1, 4}) {
      for (const bool streaming : {false, true}) {
        MonteCarloConfig mc = smallMc(6);
        mc.threads = threads;
        mc.ensemble_width = width;
        mc.streaming = streaming;
        const MonteCarloResult r = runMonteCarlo(h, mc);
        EXPECT_EQ(r.failed_samples, ref.failed_samples)
            << "threads " << threads << " width " << width << " streaming " << streaming;
        EXPECT_EQ(r.functional_failures, 6);
      }
    }
  }
}

TEST(MonteCarloQmc, ModesAreDeterministicAndDistinct) {
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  MonteCarloConfig mc;
  mc.samples = 1000;
  mc.seed = 42;
  mc.evaluator = makeSurrogateEvaluator(h);
  std::vector<MonteCarloResult> results;
  for (const SamplingMode mode :
       {SamplingMode::Pseudo, SamplingMode::LatinHypercube, SamplingMode::Sobol}) {
    mc.sampling = mode;
    const MonteCarloResult a = runMonteCarlo(h, mc);
    const MonteCarloResult b = runMonteCarlo(h, mc);
    expectBitIdentical(a, b);  // deterministic per mode
    results.push_back(a);
  }
  // Distinct modes draw distinct perturbations.
  EXPECT_NE(results[0].delay_rise, results[1].delay_rise);
  EXPECT_NE(results[0].delay_rise, results[2].delay_rise);
  EXPECT_NE(results[1].delay_rise, results[2].delay_rise);
  // But they estimate the same distribution.
  const double ref_mean = results[0].delayRise().mean;
  EXPECT_NEAR(results[1].delayRise().mean, ref_mean, 0.01 * ref_mean);
  EXPECT_NEAR(results[2].delayRise().mean, ref_mean, 0.01 * ref_mean);
}

TEST(MonteCarloQmc, LowDiscrepancyModesRunOnRealHarness) {
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  for (const SamplingMode mode : {SamplingMode::LatinHypercube, SamplingMode::Sobol}) {
    MonteCarloConfig mc = smallMc(4);
    mc.sampling = mode;
    const MonteCarloResult r = runMonteCarlo(h, mc);
    EXPECT_EQ(r.delay_rise.size(), 4u) << samplingModeName(mode);
    EXPECT_EQ(r.functional_failures, 0) << samplingModeName(mode);
    EXPECT_GT(r.delayRise().stddev, 0.0) << samplingModeName(mode);
  }
}

TEST(MonteCarloQmc, ThreadAndWidthInvariantPerMode) {
  // The serial-derivation contract holds for the QMC modes too: with
  // the surrogate, metric vectors are bit-identical across threads.
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  MonteCarloConfig mc;
  mc.samples = 2000;
  mc.seed = 9;
  mc.evaluator = makeSurrogateEvaluator(h);
  for (const SamplingMode mode :
       {SamplingMode::Pseudo, SamplingMode::LatinHypercube, SamplingMode::Sobol}) {
    mc.sampling = mode;
    mc.threads = 1;
    const MonteCarloResult serial = runMonteCarlo(h, mc);
    mc.threads = 4;
    const MonteCarloResult parallel = runMonteCarlo(h, mc);
    expectBitIdentical(serial, parallel);
  }
}

// ---------------------------------------------------------------------
// Checkpoint/resume: a run killed at an arbitrary watermark and resumed
// from its checkpoint file must produce bit-identical results to the
// uninterrupted run — metric vectors, failure records, and (in
// streaming mode) every summary field.

/// Removes the checkpoint file on construction and destruction.
struct ScopedCkpt {
  explicit ScopedCkpt(std::string p) : path(std::move(p)) { std::remove(path.c_str()); }
  ~ScopedCkpt() { std::remove(path.c_str()); }
  std::string path;
};

void expectSummaryBitEqual(const char* what, const Summary& a, const Summary& b) {
  EXPECT_EQ(a.count, b.count) << what;
  EXPECT_EQ(a.mean, b.mean) << what;
  EXPECT_EQ(a.stddev, b.stddev) << what;
  EXPECT_EQ(a.min, b.min) << what;
  EXPECT_EQ(a.max, b.max) << what;
  EXPECT_EQ(a.p05, b.p05) << what;
  EXPECT_EQ(a.median, b.median) << what;
  EXPECT_EQ(a.p95, b.p95) << what;
}

/// Runs `mc` with a deterministic kill after `kill_after` completed
/// samples, then resumes from the checkpoint and returns the result.
MonteCarloResult killThenResume(const HarnessConfig& h, MonteCarloConfig mc,
                                uint64_t kill_after) {
  MonteCarloConfig killed = mc;
  killed.job = std::make_shared<JobControl>();
  killed.job->cancelAfterUnits(kill_after);
  EXPECT_THROW(runMonteCarlo(h, killed), JobInterrupted);
  mc.job = nullptr;
  return runMonteCarlo(h, mc);
}

TEST(MonteCarloCheckpoint, SurrogateKillResumeBitIdenticalAt100k) {
  // The acceptance contract at scale: a 10^5-sample exact-mode run
  // killed mid-flight resumes bit-identically, across thread counts.
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  MonteCarloConfig mc;
  mc.samples = 100000;
  mc.seed = 20080310;
  mc.evaluator = makeSurrogateEvaluator(h);
  mc.threads = 1;
  const MonteCarloResult ref = runMonteCarlo(h, mc);  // uninterrupted, no checkpoint

  for (const int threads : {1, 4}) {
    for (const uint64_t kill_after : {uint64_t{900}, uint64_t{31777}}) {
      ScopedCkpt f("test_mc_exact.vlsckpt");
      MonteCarloConfig run = mc;
      run.threads = threads;
      run.checkpoint_path = f.path;
      run.checkpoint_interval = 4096;
      const MonteCarloResult resumed = killThenResume(h, run, kill_after);
      // A kill inside the first epoch leaves no checkpoint (the resume
      // is then a fresh run); a later kill must genuinely resume.
      if (kill_after > 4096) {
        EXPECT_GT(resumed.resumed_samples, 0) << "kill_after " << kill_after;
      }
      expectBitIdentical(ref, resumed);
    }
  }
}

TEST(MonteCarloCheckpoint, StreamingKillResumeBitIdenticalAcrossThreads) {
  // Checkpointed streaming accumulates in ordered epochs, so summaries
  // are bit-identical across thread counts AND across kill/resume.
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  MonteCarloConfig mc;
  mc.samples = 50000;
  mc.seed = 20080310;
  mc.evaluator = makeSurrogateEvaluator(h);
  mc.streaming = true;
  mc.checkpoint_interval = 2048;

  ScopedCkpt ref_f("test_mc_stream_ref.vlsckpt");
  MonteCarloConfig ref_mc = mc;
  ref_mc.threads = 1;
  ref_mc.checkpoint_path = ref_f.path;
  const MonteCarloResult ref = runMonteCarlo(h, ref_mc);  // uninterrupted

  for (const int threads : {1, 4}) {
    ScopedCkpt f("test_mc_stream.vlsckpt");
    MonteCarloConfig run = mc;
    run.threads = threads;
    run.checkpoint_path = f.path;
    const MonteCarloResult resumed = killThenResume(h, run, 9000);
    EXPECT_EQ(resumed.failed_samples, ref.failed_samples) << "threads " << threads;
    expectSummaryBitEqual("delay_rise", ref.stream.delay_rise, resumed.stream.delay_rise);
    expectSummaryBitEqual("delay_fall", ref.stream.delay_fall, resumed.stream.delay_fall);
    expectSummaryBitEqual("power_rise", ref.stream.power_rise, resumed.stream.power_rise);
    expectSummaryBitEqual("power_fall", ref.stream.power_fall, resumed.stream.power_fall);
    expectSummaryBitEqual("leakage_high", ref.stream.leakage_high,
                          resumed.stream.leakage_high);
    expectSummaryBitEqual("leakage_low", ref.stream.leakage_low, resumed.stream.leakage_low);
  }
}

TEST(MonteCarloCheckpoint, RealHarnessEnsembleKillResumeBitIdentical) {
  // Full-transient path, width-4 lockstep batches: kill after 6 of 12
  // samples, resume, compare against the uninterrupted run.
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  MonteCarloConfig mc = smallMc(12);
  mc.ensemble_width = 4;
  const MonteCarloResult ref = runMonteCarlo(h, mc);

  ScopedCkpt f("test_mc_real.vlsckpt");
  mc.checkpoint_path = f.path;
  mc.checkpoint_interval = 4;
  const MonteCarloResult resumed = killThenResume(h, mc, 6);
  // At least one full width-aligned epoch landed before the kill, and
  // the kill genuinely interrupted the run.
  EXPECT_GT(resumed.resumed_samples, 0);
  EXPECT_LT(resumed.resumed_samples, 12);
  expectBitIdentical(ref, resumed);
}

TEST(MonteCarloCheckpoint, CompletedCheckpointShortCircuitsRerun) {
  // A checkpoint at watermark == samples: the rerun restores the sink
  // and gathers without recomputing anything.
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  ScopedCkpt f("test_mc_done.vlsckpt");
  MonteCarloConfig mc;
  mc.samples = 5000;
  mc.seed = 11;
  mc.evaluator = makeSurrogateEvaluator(h);
  mc.checkpoint_path = f.path;
  mc.checkpoint_interval = 1024;
  const MonteCarloResult first = runMonteCarlo(h, mc);
  const MonteCarloResult rerun = runMonteCarlo(h, mc);
  EXPECT_EQ(rerun.resumed_samples, 5000);
  expectBitIdentical(first, rerun);
}

TEST(MonteCarloCheckpoint, IncompatibleConfigRejected) {
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  ScopedCkpt f("test_mc_incompat.vlsckpt");
  MonteCarloConfig mc;
  mc.samples = 4000;
  mc.seed = 11;
  mc.evaluator = makeSurrogateEvaluator(h);
  mc.checkpoint_path = f.path;
  mc.checkpoint_interval = 1024;
  runMonteCarlo(h, mc);

  // Same path, different seed: the fingerprint must not match.
  MonteCarloConfig other = mc;
  other.seed = 12;
  EXPECT_THROW(runMonteCarlo(h, other), InvalidInputError);
  // Different sampling mode likewise.
  MonteCarloConfig mode = mc;
  mode.sampling = SamplingMode::Sobol;
  EXPECT_THROW(runMonteCarlo(h, mode), InvalidInputError);
}

TEST(MonteCarloCheckpoint, FaultedSampleKeepsFailureRecordAcrossResume) {
  // The degrade-don't-abort ladder and checkpointing compose: a sample
  // with an unrecoverable injected fault stays attributed identically
  // after a kill/resume around it.
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  MonteCarloConfig mc = smallMc(8);
  mc.fault_sample = 5;
  mc.fault.zero_pivot_node = "out";
  const MonteCarloResult ref = runMonteCarlo(h, mc);
  ASSERT_EQ(ref.failed_samples.size(), 1u);

  ScopedCkpt f("test_mc_fault.vlsckpt");
  MonteCarloConfig run = mc;
  run.checkpoint_path = f.path;
  run.checkpoint_interval = 2;
  const MonteCarloResult resumed = killThenResume(h, run, 4);
  expectBitIdentical(ref, resumed);
  ASSERT_EQ(resumed.failed_samples.size(), 1u);
  EXPECT_EQ(resumed.failed_samples[0].id, 5);
  EXPECT_EQ(resumed.failed_samples[0].node, "out");
}

TEST(MonteCarloRetry, UnrecoverableFaultCountsARetry) {
  // max_retries = 1 (the default): the sabotaged sample is attempted
  // twice (fresh injector each time, so the unlimited fault re-fires),
  // counted as retried but not recovered, and still recorded.
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  MonteCarloConfig mc = smallMc(4);
  mc.fault_sample = 2;
  mc.fault.zero_pivot_node = "out";
  const MonteCarloResult r = runMonteCarlo(h, mc);
  EXPECT_EQ(r.retried_samples, 1);
  EXPECT_EQ(r.retry_recovered, 0);
  EXPECT_EQ(r.simulation_errors, 1);

  // With retries disabled the sample fails on its only attempt. The
  // recorded id/kind match; the message text differs (the escalated
  // attempt reports its tightened ladder), so only the identity is
  // compared.
  mc.max_retries = 0;
  const MonteCarloResult r0 = runMonteCarlo(h, mc);
  EXPECT_EQ(r0.retried_samples, 0);
  EXPECT_EQ(r0.simulation_errors, 1);
  EXPECT_EQ(r0.failedIds(), r.failedIds());
}

TEST(MonteCarloTemperature, SpreadsMetricsAndForcesScalar) {
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  MonteCarloConfig mc;
  mc.samples = 4000;
  mc.seed = 5;
  mc.evaluator = makeSurrogateEvaluator(h);
  const MonteCarloResult fixed_t = runMonteCarlo(h, mc);
  mc.variation.sigma_temperature_c = 15.0;
  const MonteCarloResult varied_t = runMonteCarlo(h, mc);
  // The surrogate's leakage is exponentially temperature-sensitive:
  // a 15 C sigma should widen its spread far beyond process-only.
  EXPECT_GT(varied_t.leakageHigh().stddev, 2.0 * fixed_t.leakageHigh().stddev);

  // On the real harness, temperature variation runs through the scalar
  // engine even when a width is requested, and still yields every
  // sample deterministically.
  MonteCarloConfig real_mc = smallMc(4);
  real_mc.variation.sigma_temperature_c = 25.0;
  real_mc.ensemble_width = 8;
  const MonteCarloResult a = runMonteCarlo(h, real_mc);
  const MonteCarloResult b = runMonteCarlo(h, real_mc);
  EXPECT_EQ(a.delay_rise.size(), 4u);
  expectBitIdentical(a, b);
  // Same seed, different temperatures: the draws differ from the
  // temperature-free run.
  const MonteCarloResult cold = runMonteCarlo(h, smallMc(4));
  EXPECT_NE(a.delay_rise, cold.delay_rise);
}

}  // namespace
}  // namespace vls
