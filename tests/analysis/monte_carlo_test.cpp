#include "analysis/monte_carlo.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

namespace vls {
namespace {

MonteCarloConfig smallMc(int samples = 12) {
  MonteCarloConfig mc;
  mc.samples = samples;
  mc.seed = 7;
  return mc;
}

TEST(MonteCarlo, ProducesRequestedSamples) {
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  const MonteCarloResult r = runMonteCarlo(h, smallMc());
  EXPECT_EQ(r.samples, 12);
  EXPECT_EQ(r.delay_rise.size(), 12u);
  EXPECT_EQ(r.leakage_low.size(), 12u);
  EXPECT_EQ(r.functional_failures, 0);
}

TEST(MonteCarlo, DeterministicBySeed) {
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  const MonteCarloResult a = runMonteCarlo(h, smallMc(5));
  const MonteCarloResult b = runMonteCarlo(h, smallMc(5));
  ASSERT_EQ(a.delay_rise.size(), b.delay_rise.size());
  for (size_t i = 0; i < a.delay_rise.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.delay_rise[i], b.delay_rise[i]);
  }
}

TEST(MonteCarlo, DifferentSeedsDiffer) {
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  MonteCarloConfig m1 = smallMc(5);
  MonteCarloConfig m2 = smallMc(5);
  m2.seed = 8;
  const MonteCarloResult a = runMonteCarlo(h, m1);
  const MonteCarloResult b = runMonteCarlo(h, m2);
  bool any_diff = false;
  for (size_t i = 0; i < a.delay_rise.size(); ++i) {
    if (a.delay_rise[i] != b.delay_rise[i]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(MonteCarlo, VariationSpreadsDelays) {
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  const MonteCarloResult r = runMonteCarlo(h, smallMc(16));
  const Summary s = r.delayRise();
  EXPECT_GT(s.stddev, 0.0);
  // Sigma should be a modest fraction of the mean for 3.34% variations.
  EXPECT_LT(s.stddev, 0.5 * s.mean);
}

TEST(MonteCarlo, ZeroVariationCollapsesSpread) {
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  MonteCarloConfig mc = smallMc(4);
  mc.variation.sigma_w = 0.0;
  mc.variation.sigma_l = 0.0;
  mc.variation.sigma_vt_rel = 0.0;
  const MonteCarloResult r = runMonteCarlo(h, mc);
  EXPECT_NEAR(r.delayRise().stddev, 0.0, 1e-18);
  EXPECT_NEAR(r.leakageHigh().stddev, 0.0, 1e-18);
}

void expectBitIdentical(const MonteCarloResult& a, const MonteCarloResult& b) {
  ASSERT_EQ(a.delay_rise.size(), b.delay_rise.size());
  for (size_t i = 0; i < a.delay_rise.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.delay_rise[i], b.delay_rise[i]);
    EXPECT_DOUBLE_EQ(a.delay_fall[i], b.delay_fall[i]);
    EXPECT_DOUBLE_EQ(a.power_rise[i], b.power_rise[i]);
    EXPECT_DOUBLE_EQ(a.power_fall[i], b.power_fall[i]);
    EXPECT_DOUBLE_EQ(a.leakage_high[i], b.leakage_high[i]);
    EXPECT_DOUBLE_EQ(a.leakage_low[i], b.leakage_low[i]);
  }
  EXPECT_EQ(a.failed_samples, b.failed_samples);
  EXPECT_EQ(a.functional_failures, b.functional_failures);
}

TEST(MonteCarlo, ThreadCountInvariant) {
  // The determinism contract: VLS_THREADS=1 and VLS_THREADS=4 must give
  // bit-identical per-sample metric vectors for the same seed.
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  setenv("VLS_THREADS", "1", 1);
  const MonteCarloResult serial = runMonteCarlo(h, smallMc(8));
  setenv("VLS_THREADS", "4", 1);
  const MonteCarloResult parallel = runMonteCarlo(h, smallMc(8));
  unsetenv("VLS_THREADS");
  expectBitIdentical(serial, parallel);
}

TEST(MonteCarlo, ExplicitThreadOverrideInvariant) {
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  MonteCarloConfig one = smallMc(6);
  one.threads = 1;
  MonteCarloConfig three = smallMc(6);
  three.threads = 3;
  expectBitIdentical(runMonteCarlo(h, one), runMonteCarlo(h, three));
}

TEST(MonteCarlo, RecordsFailedSampleIndices) {
  // The Khan SS-VS cannot shift this far down: every sample is
  // non-functional by a wide margin, and each sample id must be recorded.
  HarnessConfig h;
  h.kind = ShifterKind::SsvsKhan;
  h.vddi = 1.4;
  h.vddo = 0.5;
  const MonteCarloResult r = runMonteCarlo(h, smallMc(4));
  EXPECT_EQ(r.functional_failures, 4);
  EXPECT_EQ(r.simulation_errors, 0);
  ASSERT_EQ(r.failed_samples.size(), 4u);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(r.failed_samples[s].id, s);
    EXPECT_EQ(r.failed_samples[s].kind, FailureKind::NonFunctional);
  }
}

TEST(MonteCarlo, NoFailuresMeansEmptyFailedSamples) {
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  const MonteCarloResult r = runMonteCarlo(h, smallMc(5));
  EXPECT_TRUE(r.failed_samples.empty());
  // Metric vectors stay index-aligned with sample ids.
  EXPECT_EQ(r.delay_rise.size(), 5u);
}

TEST(MonteCarlo, EnsembleMatchesScalarSummaries) {
  // Acceptance contract for the lockstep ensemble engine: with the same
  // seed, ensemble-mode summary statistics (mean/sigma of delay, power
  // and leakage) must match the scalar reference within 0.5% of the
  // metric scale, and the failed-sample ids must be identical.
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  // Compare at converged time resolution: the lockstep engine advances
  // on the min-dt of its lanes, so at coarse settings the two modes
  // carry different discretization error (both within tran tolerance,
  // but not within 0.5% of each other). Tightening dt_max and the LTE
  // tolerance makes both modes converge to the same waveforms.
  h.dt_max = 10e-12;
  h.sim.tran_reltol = 5e-4;
  MonteCarloConfig scalar = smallMc(16);
  scalar.threads = 1;
  MonteCarloConfig ens = scalar;
  ens.ensemble_width = 8;
  const MonteCarloResult a = runMonteCarlo(h, scalar);
  const MonteCarloResult b = runMonteCarlo(h, ens);

  EXPECT_EQ(a.failed_samples, b.failed_samples);
  EXPECT_EQ(a.failedIds(), b.failedIds());
  EXPECT_EQ(a.functional_failures, b.functional_failures);
  EXPECT_EQ(a.simulation_errors, b.simulation_errors);
  ASSERT_EQ(a.delay_rise.size(), b.delay_rise.size());

  auto close = [](const char* what, Summary s, Summary e) {
    const double scale = std::abs(s.mean);
    EXPECT_NEAR(e.mean, s.mean, 0.005 * scale) << what << " mean";
    EXPECT_NEAR(e.stddev, s.stddev, 0.005 * scale) << what << " sigma";
  };
  close("delay_rise", a.delayRise(), b.delayRise());
  close("delay_fall", a.delayFall(), b.delayFall());
  close("power_rise", a.powerRise(), b.powerRise());
  close("power_fall", a.powerFall(), b.powerFall());
  close("leakage_high", a.leakageHigh(), b.leakageHigh());
  close("leakage_low", a.leakageLow(), b.leakageLow());
}

TEST(MonteCarlo, EnsembleWidthInvariantFailureIds) {
  // A config where every sample is non-functional: the ensemble path
  // must report exactly the same ids and kinds as the scalar path.
  HarnessConfig h;
  h.kind = ShifterKind::SsvsKhan;
  h.vddi = 1.4;
  h.vddo = 0.5;
  MonteCarloConfig scalar = smallMc(6);
  MonteCarloConfig ens = smallMc(6);
  ens.ensemble_width = 4;
  const MonteCarloResult a = runMonteCarlo(h, scalar);
  const MonteCarloResult b = runMonteCarlo(h, ens);
  EXPECT_EQ(a.failed_samples, b.failed_samples);
  EXPECT_EQ(b.functional_failures, 6);
  EXPECT_EQ(b.simulation_errors, 0);
}

TEST(MonteCarlo, EnsembleWidthClampAndOddBatch) {
  // Widths above kMaxLanes clamp instead of throwing, and a sample
  // count that does not divide the width still yields every sample.
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  MonteCarloConfig mc = smallMc(5);
  mc.ensemble_width = 1000;
  const MonteCarloResult r = runMonteCarlo(h, mc);
  EXPECT_EQ(r.samples, 5);
  EXPECT_EQ(r.delay_rise.size(), 5u);
  EXPECT_EQ(r.functional_failures, 0);
}

TEST(MonteCarloFault, RecoveredFaultLeavesNoFailureRecord) {
  // A single-fire Newton fault kills the direct rung of one sample's
  // operating point; the gmin rung rescues it. The sample must produce
  // metrics and no failure record — in both engine modes.
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  MonteCarloConfig scalar = smallMc(4);
  scalar.fault_sample = 1;
  scalar.fault.fail_newton_at_iteration = 0;
  scalar.fault.stage_mask = recoveryStageBit(RecoveryStage::DirectNewton);
  scalar.fault.max_fires = 1;
  MonteCarloConfig ens = scalar;
  ens.ensemble_width = 4;
  const MonteCarloResult a = runMonteCarlo(h, scalar);
  const MonteCarloResult b = runMonteCarlo(h, ens);
  EXPECT_TRUE(a.failed_samples.empty());
  EXPECT_EQ(a.failed_samples, b.failed_samples);
  EXPECT_EQ(a.simulation_errors, 0);
  EXPECT_EQ(b.simulation_errors, 0);
  EXPECT_EQ(a.delay_rise.size(), 4u);
  EXPECT_EQ(b.delay_rise.size(), 4u);
}

TEST(MonteCarloFault, UnrecoverableFaultAttributedIdenticallyInBothModes) {
  // An unlimited pivot fault defeats every ladder rung for one sample.
  // Scalar and ensemble runs must record exactly the same failure:
  // same id, same deepest stage, same implicated node.
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  MonteCarloConfig scalar = smallMc(4);
  scalar.fault_sample = 2;
  scalar.fault.zero_pivot_node = "out";
  MonteCarloConfig ens = scalar;
  ens.ensemble_width = 4;
  const MonteCarloResult a = runMonteCarlo(h, scalar);
  const MonteCarloResult b = runMonteCarlo(h, ens);

  ASSERT_EQ(a.failed_samples.size(), 1u);
  const SampleFailure& f = a.failed_samples[0];
  EXPECT_EQ(f.id, 2);
  EXPECT_EQ(f.kind, FailureKind::SimulationError);
  EXPECT_EQ(f.stage, "pseudo-transient");  // deepest rung attempted
  EXPECT_EQ(f.node, "out");
  EXPECT_FALSE(f.message.empty());
  EXPECT_EQ(a.simulation_errors, 1);
  // The comparison is on full records: attribution strings included.
  EXPECT_EQ(a.failed_samples, b.failed_samples);
  // The healthy samples still produced metrics.
  EXPECT_EQ(a.delay_rise.size(), 3u);
  EXPECT_EQ(b.delay_rise.size(), 3u);
}

TEST(MonteCarloFault, EnsembleSmokeRecordsExactlyOneFailure) {
  // CI smoke contract: a 32-sample width-8 ensemble run with one
  // sabotaged sample yields exactly one failed_samples entry, fully
  // attributed, and 31 clean metric entries.
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  MonteCarloConfig mc = smallMc(32);
  mc.ensemble_width = 8;
  mc.fault_sample = 13;
  mc.fault.zero_pivot_node = "out";
  const MonteCarloResult r = runMonteCarlo(h, mc);
  ASSERT_EQ(r.failed_samples.size(), 1u);
  EXPECT_EQ(r.failed_samples[0].id, 13);
  EXPECT_EQ(r.failed_samples[0].kind, FailureKind::SimulationError);
  EXPECT_FALSE(r.failed_samples[0].stage.empty());
  EXPECT_EQ(r.failed_samples[0].node, "out");
  EXPECT_EQ(r.simulation_errors, 1);
  EXPECT_EQ(r.functional_failures, 0);
  EXPECT_EQ(r.delay_rise.size(), 31u);
}

TEST(MonteCarlo, PaperSigmas) {
  const VariationSpec v{};
  EXPECT_NEAR(v.sigma_w, 0.0334 * 90e-9, 1e-12);
  EXPECT_NEAR(v.sigma_l, 0.0334 * 90e-9, 1e-12);
  // 3 sigma = 10% of nominal VT.
  EXPECT_NEAR(3.0 * v.sigma_vt_rel, 0.1, 2e-3);
}

}  // namespace
}  // namespace vls
