#include "analysis/shifter_harness.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace vls {
namespace {

TEST(Harness, RejectsEmptySequence) {
  HarnessConfig cfg;
  cfg.bits = {};
  EXPECT_THROW(ShifterTestbench tb(cfg), InvalidInputError);
}

TEST(Harness, KindNames) {
  EXPECT_STREQ(shifterKindName(ShifterKind::Sstvs), "SS-TVS");
  EXPECT_STREQ(shifterKindName(ShifterKind::CombinedVs), "Combined VS");
  EXPECT_STREQ(shifterKindName(ShifterKind::InverterOnly), "Inverter");
  EXPECT_STREQ(shifterKindName(ShifterKind::SsvsKhan), "SS-VS [6]");
}

TEST(Harness, LastRunRequiresMeasure) {
  HarnessConfig cfg;
  ShifterTestbench tb(cfg);
  EXPECT_THROW(tb.lastRun(), InvalidInputError);
  tb.measure();
  EXPECT_GT(tb.lastRun().steps(), 10u);
}

TEST(Harness, ProbeNodesIncludeSstvsInternals) {
  HarnessConfig cfg;
  cfg.kind = ShifterKind::Sstvs;
  ShifterTestbench tb(cfg);
  const auto probes = tb.probeNodes();
  EXPECT_GE(probes.size(), 5u);
  bool has_ctrl = false;
  for (const auto& p : probes) {
    if (p == "xdut.ctrl") has_ctrl = true;
  }
  EXPECT_TRUE(has_ctrl);
}

TEST(Harness, MetricsArePositiveAndOrdered) {
  HarnessConfig cfg;
  cfg.kind = ShifterKind::Sstvs;
  cfg.vddi = 0.8;
  cfg.vddo = 1.2;
  const ShifterMetrics m = measureShifter(cfg);
  EXPECT_TRUE(m.functional);
  EXPECT_GT(m.delay_rise, 1e-12);
  EXPECT_LT(m.delay_rise, 1e-9);
  EXPECT_GT(m.delay_fall, 1e-12);
  EXPECT_GT(m.power_rise, 0.0);
  EXPECT_GT(m.power_fall, 0.0);
  EXPECT_GT(m.leakage_high, 0.0);
  EXPECT_GT(m.leakage_low, 0.0);
}

TEST(Harness, InverterOnlyIsBestForDownShift) {
  // The paper: an inverter is the best level shifter when VDDI > VDDO.
  HarnessConfig inv;
  inv.kind = ShifterKind::InverterOnly;
  inv.vddi = 1.2;
  inv.vddo = 0.8;
  const ShifterMetrics mi = measureShifter(inv);
  EXPECT_TRUE(mi.functional);

  HarnessConfig tvs = inv;
  tvs.kind = ShifterKind::Sstvs;
  const ShifterMetrics mt = measureShifter(tvs);
  // The bare inverter should be at least as fast as anything else.
  EXPECT_LE(mi.delay_fall, mt.delay_fall * 1.5);
}

TEST(Harness, InverterLeaksBadlyOnUpShift) {
  // ... and the paper's premise: an inverter must NOT be used for
  // VDDI < VDDO because the PMOS cannot turn off.
  HarnessConfig inv;
  inv.kind = ShifterKind::InverterOnly;
  inv.vddi = 0.8;
  inv.vddo = 1.2;
  const ShifterMetrics m = measureShifter(inv);
  EXPECT_GT(m.leakage_low, 100e-9);  // input high: near-threshold PMOS path
}

TEST(Harness, DutFetsExcludeDriver) {
  HarnessConfig cfg;
  cfg.kind = ShifterKind::Sstvs;
  ShifterTestbench tb(cfg);
  for (const Mosfet* fet : tb.dutFets()) {
    EXPECT_EQ(fet->name().rfind("xdut.", 0), 0u) << fet->name();
  }
}

TEST(Harness, GeometryPerturbationChangesMetrics) {
  HarnessConfig cfg;
  cfg.kind = ShifterKind::Sstvs;
  ShifterTestbench nominal(cfg);
  const ShifterMetrics m0 = nominal.measure();

  ShifterTestbench skewed(cfg);
  for (Mosfet* fet : skewed.dutFets()) {
    MosGeometry g = fet->geometry();
    g.delta_vt = 0.03;  // slow corner
    fet->setGeometry(g);
  }
  const ShifterMetrics m1 = skewed.measure();
  EXPECT_TRUE(m1.functional);
  EXPECT_GT(m1.delay_rise, m0.delay_rise);
  EXPECT_LT(m1.leakage_high, m0.leakage_high * 1.001);
}

TEST(Harness, TemperatureRaisesLeakage) {
  HarnessConfig cold;
  cold.kind = ShifterKind::Sstvs;
  cold.temperature_c = 27.0;
  HarnessConfig hot = cold;
  hot.temperature_c = 90.0;
  const ShifterMetrics mc_ = measureShifter(cold);
  const ShifterMetrics mh = measureShifter(hot);
  EXPECT_TRUE(mh.functional);
  EXPECT_GT(mh.leakage_high + mh.leakage_low, (mc_.leakage_high + mc_.leakage_low) * 2.0);
}

}  // namespace
}  // namespace vls
