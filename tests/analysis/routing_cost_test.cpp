#include "analysis/routing_cost.hpp"

#include <gtest/gtest.h>

#include "base/error.hpp"

namespace vls {
namespace {

TEST(RoutingCost, SingleUpShiftSignal) {
  std::vector<ModuleSpec> modules = {{"a", 0.8, 0.0, 0.0}, {"b", 1.2, 1e-3, 0.0}};
  std::vector<SignalBundle> signals = {{0, 1, 4}};
  RoutingCostModel model;
  model.detour = 1.0;
  const RoutingReport rep = compareRoutingCost(modules, signals, model);
  EXPECT_EQ(rep.cvs_extra_rails, 1);
  EXPECT_NEAR(rep.cvs_supply_wirelength, 1e-3, 1e-12);
  EXPECT_NEAR(rep.cvs_supply_area, 1e-3 * 3e-6, 1e-15);
  EXPECT_EQ(rep.dual_extra_wires, 4);
  EXPECT_NEAR(rep.signal_wirelength, 4e-3, 1e-12);
  EXPECT_DOUBLE_EQ(rep.ssvs_extra_area, 0.0);
}

TEST(RoutingCost, DownShiftNeedsNothingExtra) {
  // High-to-low: an inverter suffices at the receiver; no rail import.
  std::vector<ModuleSpec> modules = {{"a", 1.2, 0.0, 0.0}, {"b", 0.8, 1e-3, 0.0}};
  std::vector<SignalBundle> signals = {{0, 1, 4}};
  const RoutingReport rep = compareRoutingCost(modules, signals);
  EXPECT_EQ(rep.cvs_extra_rails, 0);
  EXPECT_EQ(rep.dual_extra_wires, 0);
  EXPECT_GT(rep.signal_area, 0.0);
}

TEST(RoutingCost, RailImportedOncePerReceiver) {
  // Two bundles from the same low domain to the same high domain: one rail.
  std::vector<ModuleSpec> modules = {{"a", 0.8, 0.0, 0.0}, {"b", 1.2, 1e-3, 0.0}};
  std::vector<SignalBundle> signals = {{0, 1, 2}, {0, 1, 3}};
  const RoutingReport rep = compareRoutingCost(modules, signals);
  EXPECT_EQ(rep.cvs_extra_rails, 1);
  EXPECT_EQ(rep.dual_extra_wires, 5);
}

TEST(RoutingCost, PaperFourModuleMesh) {
  std::vector<ModuleSpec> modules;
  std::vector<SignalBundle> signals;
  paperFourModuleSystem(modules, signals);
  ASSERT_EQ(modules.size(), 4u);
  ASSERT_EQ(signals.size(), 12u);
  const RoutingReport rep = compareRoutingCost(modules, signals);
  // Exactly the up-shift pairs import rails: (0.8->1.0), (0.8->1.2),
  // (0.8->1.4), (1.0->1.2), (1.0->1.4), (1.2->1.4) = 6.
  EXPECT_EQ(rep.cvs_extra_rails, 6);
  EXPECT_GT(rep.cvs_supply_area, 0.0);
  // The supply rails are ~15x wider than signals: overhead is material.
  EXPECT_GT(rep.cvs_supply_area / rep.signal_area, 0.05);
}

TEST(RoutingCost, BadIndexThrows) {
  std::vector<ModuleSpec> modules = {{"a", 1.0, 0.0, 0.0}};
  std::vector<SignalBundle> signals = {{0, 3, 1}};
  EXPECT_THROW(compareRoutingCost(modules, signals), InvalidInputError);
}

}  // namespace
}  // namespace vls
