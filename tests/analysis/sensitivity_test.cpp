#include "analysis/sensitivity.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace vls {
namespace {

TEST(Sensitivity, CoversEveryDutDevice) {
  HarnessConfig cfg;
  cfg.kind = ShifterKind::InverterOnly;  // small DUT: fast test
  cfg.vddi = 1.2;
  cfg.vddo = 0.8;
  const SensitivityReport rep = analyzeVtSensitivity(cfg);
  EXPECT_EQ(rep.entries.size(), 2u);  // inverter: mp + mn
  for (const auto& e : rep.entries) {
    EXPECT_EQ(e.device.rfind("xdut.", 0), 0u);
    EXPECT_TRUE(std::isfinite(e.d_delay_rise));
  }
}

TEST(Sensitivity, SortedByRisingContribution) {
  HarnessConfig cfg;
  cfg.kind = ShifterKind::InverterOnly;
  cfg.vddi = 1.2;
  cfg.vddo = 0.8;
  const SensitivityReport rep = analyzeVtSensitivity(cfg);
  for (size_t i = 1; i < rep.entries.size(); ++i) {
    EXPECT_GE(rep.entries[i - 1].sigma_contrib_rise, rep.entries[i].sigma_contrib_rise);
  }
  EXPECT_GE(rep.predicted_sigma_rise, rep.entries.front().sigma_contrib_rise);
}

TEST(Sensitivity, InverterPmosDominatesRisingEdge) {
  // For a bare inverter the rising-output edge is the PMOS's job: its
  // VT sensitivity must dominate.
  HarnessConfig cfg;
  cfg.kind = ShifterKind::InverterOnly;
  cfg.vddi = 1.2;
  cfg.vddo = 0.8;
  const SensitivityReport rep = analyzeVtSensitivity(cfg);
  EXPECT_NE(rep.entries.front().device.find(".mp"), std::string::npos);
}

TEST(Sensitivity, LeakageSensitivityIsNegativeForHigherVt) {
  // Raising any VT lowers subthreshold leakage: d(leak)/dVT < 0 for the
  // dominant contributors.
  HarnessConfig cfg;
  cfg.kind = ShifterKind::InverterOnly;
  cfg.vddi = 1.2;
  cfg.vddo = 0.8;
  const SensitivityReport rep = analyzeVtSensitivity(cfg);
  double min_dleak = 0.0;
  for (const auto& e : rep.entries) min_dleak = std::min(min_dleak, e.d_leak_high);
  EXPECT_LT(min_dleak, 0.0);
}

}  // namespace
}  // namespace vls
