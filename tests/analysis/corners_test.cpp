#include "analysis/corners.hpp"

#include <gtest/gtest.h>

namespace vls {
namespace {

TEST(Corners, StandardSetShape) {
  const auto corners = standardCorners();
  ASSERT_EQ(corners.size(), 5u);
  EXPECT_EQ(corners[0].name, "TT");
  EXPECT_LT(corners[1].nmos_dvt, 0.0);  // FF: fast NMOS
  EXPECT_GT(corners[2].nmos_dvt, 0.0);  // SS: slow NMOS
  EXPECT_NE(corners[3].nmos_dvt, corners[3].pmos_dvt);  // FS skewed
}

TEST(Corners, SstvsSurvivesAllCorners) {
  HarnessConfig base;
  base.kind = ShifterKind::Sstvs;
  base.vddi = 0.8;
  base.vddo = 1.2;
  const auto results = runCorners(base, standardCorners());
  for (const auto& r : results) {
    EXPECT_TRUE(r.metrics.functional) << r.corner.name;
  }
}

TEST(Corners, SlowCornerIsSlowerThanFast) {
  HarnessConfig base;
  base.kind = ShifterKind::Sstvs;
  const auto results = runCorners(base, standardCorners());
  const auto find = [&](const char* name) -> const CornerResult& {
    for (const auto& r : results) {
      if (r.corner.name == name) return r;
    }
    throw std::runtime_error("corner missing");
  };
  EXPECT_GT(find("SS").metrics.delay_rise, find("FF").metrics.delay_rise);
  EXPECT_GT(find("SS").metrics.delay_fall, find("FF").metrics.delay_fall);
  // Hot slow corner leaks more than nominal despite the higher VT.
  EXPECT_GT(find("SS").metrics.leakage_high, find("TT").metrics.leakage_high);
}

TEST(Corners, CornerSkewAppliesOnlyToDut) {
  // The TT corner must reproduce the plain measurement exactly.
  HarnessConfig base;
  base.kind = ShifterKind::Sstvs;
  const ShifterMetrics plain = measureShifter(base);
  const auto results = runCorners(base, {standardCorners()[0]});
  EXPECT_DOUBLE_EQ(results[0].metrics.delay_rise, plain.delay_rise);
  EXPECT_DOUBLE_EQ(results[0].metrics.leakage_high, plain.leakage_high);
}

}  // namespace
}  // namespace vls
