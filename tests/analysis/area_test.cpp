#include "analysis/area.hpp"

#include <gtest/gtest.h>

#include "cells/sstvs.hpp"
#include "circuit/circuit.hpp"

namespace vls {
namespace {

TEST(Area, ScalesWithDeviceCountAndWidth) {
  Circuit c;
  MosGeometry g;
  g.w = 200e-9;
  g.l = 100e-9;
  auto& a = c.add<Mosfet>("a", kGround, c.node("g1"), kGround, kGround, nmos90(), g);
  MosList one = {&a};
  const double area1 = estimateCellArea(one);
  auto& b = c.add<Mosfet>("b", kGround, c.node("g2"), kGround, kGround, nmos90(), g);
  MosList two = {&a, &b};
  EXPECT_NEAR(estimateCellArea(two), 2.0 * area1, area1 * 1e-9);

  MosGeometry wide = g;
  wide.w = 400e-9;
  auto& w = c.add<Mosfet>("w", kGround, c.node("g3"), kGround, kGround, nmos90(), wide);
  MosList wl = {&w};
  EXPECT_GT(estimateCellArea(wl), area1);
}

TEST(Area, SstvsCellAreaNearPaperValue) {
  // Paper: layout area 4.47 um^2. Our analytic estimator with default
  // rules should land in the same small-cell class (2-9 um^2).
  Circuit c;
  const SstvsHandles h = buildSstvs(c, "x", c.node("in"), c.node("out"), c.node("vddo"), {});
  const double area = estimateCellArea(h.fets);
  EXPECT_GT(area, 2.0e-12);
  EXPECT_LT(area, 9.0e-12);
}

TEST(Area, BoundingBoxRespectsAspect) {
  Circuit c;
  const SstvsHandles h = buildSstvs(c, "x", c.node("in"), c.node("out"), c.node("vddo"), {});
  const CellBox box = estimateCellBox(h.fets, 6.4);
  EXPECT_NEAR(box.height / box.width, 6.4, 1e-9);
  EXPECT_NEAR(box.width * box.height, estimateCellArea(h.fets), 1e-18);
}

}  // namespace
}  // namespace vls
