#include "analysis/static_margins.hpp"

#include <gtest/gtest.h>

namespace vls {
namespace {

TEST(StaticMargins, InverterReferenceValues) {
  HarnessConfig cfg;
  cfg.kind = ShifterKind::InverterOnly;
  cfg.vddi = 1.2;
  cfg.vddo = 1.2;
  const StaticMargins m = measureStaticMargins(cfg);
  EXPECT_NEAR(m.voh, 1.2, 5e-3);
  EXPECT_NEAR(m.vol, 0.0, 5e-3);
  EXPECT_TRUE(m.regenerative);
  EXPECT_GT(m.peak_gain, 4.0);
  EXPECT_GT(m.vil, 0.2);
  EXPECT_LT(m.vih, 1.0);
  EXPECT_LT(m.vil, m.vih);
  EXPECT_GT(m.nml, 0.2);
  EXPECT_GT(m.nmh, 0.2);
}

TEST(StaticMargins, SstvsUpShiftIsDynamicOnly) {
  // The SS-TVS up-shift path has NO static transition: under a
  // quasi-static ramp the ctrl node tracks the input through M2 and M1
  // never gains gate drive, so node2 stays latched. This is a real
  // property of the topology (the cell is edge/stored-charge operated);
  // the paper's stimuli always have edges.
  HarnessConfig cfg;
  cfg.kind = ShifterKind::Sstvs;
  cfg.vddi = 0.8;
  cfg.vddo = 1.2;
  const StaticMargins m = measureStaticMargins(cfg);
  EXPECT_FALSE(m.static_transition);
  EXPECT_LT(m.peak_gain, 1.0);
  // And yet the same cell converts these levels dynamically:
  const ShifterMetrics dynamic = measureShifter(cfg);
  EXPECT_TRUE(dynamic.functional);
}

TEST(StaticMargins, SstvsDownShiftHasStaticTransition) {
  HarnessConfig cfg;
  cfg.kind = ShifterKind::Sstvs;
  cfg.vddi = 1.2;
  cfg.vddo = 0.8;
  const StaticMargins m = measureStaticMargins(cfg);
  EXPECT_TRUE(m.static_transition);
  EXPECT_NEAR(m.voh, 0.8, 0.03);
  EXPECT_NEAR(m.vol, 0.0, 0.03);
  EXPECT_TRUE(m.regenerative);
}

TEST(StaticMargins, PuriMarginsDegradeWithRailGap) {
  // [13]'s static margins collapse as VDDO - VDDI grows (the virtual
  // rail can no longer shut the output inverter's PMOS).
  HarnessConfig cfg;
  cfg.kind = ShifterKind::SsvsPuri;
  cfg.vddi = 0.8;
  cfg.vddo = 1.0;
  const StaticMargins narrow = measureStaticMargins(cfg);
  cfg.vddo = 1.4;
  const StaticMargins wide = measureStaticMargins(cfg);
  EXPECT_TRUE(narrow.static_transition);
  // Wider gap: the cell still transitions statically but the input-high
  // side leaks; margins must not improve.
  EXPECT_LE(wide.nml + wide.nmh, narrow.nml + narrow.nmh + 0.05);
}

TEST(StaticMargins, SweepToleratesBistableSnapping) {
  // The combined VS (with its internal latch) may have mid-transition
  // points where DC convergence fails; the sweep must survive and
  // report rather than abort.
  HarnessConfig cfg;
  cfg.kind = ShifterKind::CombinedVs;
  cfg.vddi = 1.2;
  cfg.vddo = 0.8;
  EXPECT_NO_THROW({
    const StaticMargins m = measureStaticMargins(cfg);
    EXPECT_TRUE(m.static_transition);  // inverter path: clean DC curve
  });
}

}  // namespace
}  // namespace vls
