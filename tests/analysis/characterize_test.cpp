// Characterization farm: the lane-batched engine must reproduce the
// scalar reference loop within CharGrid::lane_rel_tol, stay invariant
// under the thread count, and the warm-start chain must not change
// converged results under grid reordering.
#include "analysis/characterize.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <string>

#include "base/job_control.hpp"
#include "io/liberty_validate.hpp"
#include "io/liberty_writer.hpp"
#include "sim/fault_injection.hpp"

namespace vls {
namespace {

/// Small grid (3 slews x 2 loads) keeps each farm run to a handful of
/// transients; the production 5x5 grid exercises the same code paths.
CharGrid testGrid() {
  CharGrid g;
  g.slews = {20e-12, 60e-12, 150e-12};
  g.loads = {1e-15, 4e-15};
  return g;
}

CharCorner typicalCorner() { return CharCorner{}; }

/// Max full-scale relative table disagreement: for each metric family,
/// |a - b| normalized by the reference table's peak magnitude of that
/// family (the CharGrid::lane_rel_tol contract — per-entry relative
/// error would divide fs-level solver noise by near-zero entries like
/// a sub-ps inverter delay or the near-cancelling quiet-slot energy).
double maxRelDiff(const CharTable& a, const CharTable& b) {
  EXPECT_EQ(a.points.size(), b.points.size());
  auto metric = [](const CharPoint& p, int m) {
    switch (m) {
      case 0: return p.delay_rise;
      case 1: return p.delay_fall;
      case 2: return p.trans_rise;
      case 3: return p.trans_fall;
      case 4: return p.energy_rise;
      default: return p.energy_fall;
    }
  };
  double worst = 0.0;
  for (int m = 0; m < 6; ++m) {
    // The two power tables share one full scale — the cell's peak
    // switching energy — since the quieter slot's own peak is itself a
    // small difference of large integrals.
    const int peak_lo = m < 4 ? m : 4;
    const int peak_hi = m < 4 ? m : 5;
    double peak = 0.0;
    for (const CharPoint& q : b.points) {
      for (int pm = peak_lo; pm <= peak_hi; ++pm) peak = std::max(peak, std::fabs(metric(q, pm)));
    }
    if (peak <= 0.0) continue;
    for (size_t i = 0; i < a.points.size(); ++i) {
      worst = std::max(worst, std::fabs(metric(a.points[i], m) - metric(b.points[i], m)) / peak);
    }
  }
  return worst;
}

bool allOk(const CharTable& t) {
  return std::all_of(t.points.begin(), t.points.end(),
                     [](const CharPoint& p) { return p.ok; });
}

bool identicalTables(const CharTable& a, const CharTable& b) {
  if (a.points.size() != b.points.size()) return false;
  for (size_t i = 0; i < a.points.size(); ++i) {
    const CharPoint& p = a.points[i];
    const CharPoint& q = b.points[i];
    if (p.delay_rise != q.delay_rise || p.delay_fall != q.delay_fall ||
        p.trans_rise != q.trans_rise || p.trans_fall != q.trans_fall ||
        p.energy_rise != q.energy_rise || p.energy_fall != q.energy_fall || p.ok != q.ok) {
      return false;
    }
  }
  return true;
}

TEST(Characterize, LaneMatchesScalarAcrossWidths) {
  CharGrid grid = testGrid();
  const CharCorner corner = typicalCorner();
  const HarnessConfig base;

  grid.use_lanes = false;
  const CharTable scalar = characterizeCell(ShifterKind::Sstvs, corner, grid, base);
  ASSERT_TRUE(allOk(scalar));

  grid.use_lanes = true;
  grid.lane_width = 8;
  const CharTable lanes8 = characterizeCell(ShifterKind::Sstvs, corner, grid, base);
  EXPECT_TRUE(allOk(lanes8));
  EXPECT_EQ(lanes8.scalar_fallbacks, 0u);
  EXPECT_LE(maxRelDiff(lanes8, scalar), grid.lane_rel_tol);

  grid.lane_width = 1;
  const CharTable lanes1 = characterizeCell(ShifterKind::Sstvs, corner, grid, base);
  EXPECT_TRUE(allOk(lanes1));
  EXPECT_LE(maxRelDiff(lanes1, scalar), grid.lane_rel_tol);

  // Sanity on the physics: more load means more delay at fixed slew.
  EXPECT_GT(lanes8.at(0, 1).delay_rise, lanes8.at(0, 0).delay_rise);
}

TEST(Characterize, FarmInvariantUnderThreadCount) {
  CharGrid grid = testGrid();
  grid.slews = {30e-12, 120e-12};  // 2x2 grid: the farm axis is under test here
  CharRequest req;
  req.kinds = {ShifterKind::Sstvs, ShifterKind::InverterOnly};
  req.corners = {typicalCorner()};
  req.grid = grid;

  setenv("VLS_THREADS", "1", 1);
  const std::vector<CharTable> t1 = characterizeCells(req);
  setenv("VLS_THREADS", "4", 1);
  const std::vector<CharTable> t4 = characterizeCells(req);
  unsetenv("VLS_THREADS");

  ASSERT_EQ(t1.size(), 2u);
  ASSERT_EQ(t4.size(), 2u);
  for (size_t i = 0; i < t1.size(); ++i) {
    EXPECT_TRUE(identicalTables(t1[i], t4[i])) << "task " << i;
  }
  EXPECT_EQ(t1[0].kind, ShifterKind::Sstvs);
  EXPECT_EQ(t1[1].kind, ShifterKind::InverterOnly);
}

TEST(Characterize, WarmStartChainInvariantUnderGridShuffle) {
  CharGrid grid = testGrid();
  grid.use_lanes = false;
  const CharCorner corner = typicalCorner();
  const HarnessConfig base;

  const CharTable row_major = characterizeCell(ShifterKind::Sstvs, corner, grid, base);

  // Reversed order flips every warm-start edge in the chain; converged
  // results must not care where their initial guess came from.
  const size_t n = grid.slews.size() * grid.loads.size();
  grid.point_order.resize(n);
  std::iota(grid.point_order.begin(), grid.point_order.end(), size_t{0});
  std::reverse(grid.point_order.begin(), grid.point_order.end());
  const CharTable shuffled = characterizeCell(ShifterKind::Sstvs, corner, grid, base);

  EXPECT_TRUE(allOk(shuffled));
  EXPECT_LE(maxRelDiff(shuffled, row_major), grid.lane_rel_tol);
}

TEST(Characterize, RejectsBadGrids) {
  const CharCorner corner = typicalCorner();
  const HarnessConfig base;
  CharGrid grid = testGrid();
  grid.slews.clear();
  EXPECT_THROW(characterizeCell(ShifterKind::Sstvs, corner, grid, base), InvalidInputError);

  grid = testGrid();
  grid.slews.push_back(2e-9);  // ramp would outlast the bit slot
  EXPECT_THROW(characterizeCell(ShifterKind::Sstvs, corner, grid, base), InvalidInputError);

  grid = testGrid();
  grid.point_order = {0, 0, 1, 2, 3, 4};  // not a permutation
  grid.use_lanes = false;
  EXPECT_THROW(characterizeCell(ShifterKind::Sstvs, corner, grid, base), InvalidInputError);
}

TEST(Characterize, EndToEndLibertyIsValid) {
  CharGrid grid = testGrid();
  CharRequest req;
  req.kinds = {ShifterKind::Sstvs};
  req.corners = {typicalCorner()};
  req.grid = grid;
  const std::vector<CharTable> tables = characterizeCells(req);

  const std::vector<LibertyCellData> cells = libertyCellsFromCharacterization(tables);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_TRUE(cells[0].hasNldm());
  EXPECT_EQ(cells[0].cell_rise.index_1.size(), grid.slews.size());
  EXPECT_EQ(cells[0].cell_rise.index_2.size(), grid.loads.size());

  const std::string lib = writeLiberty(LibertyLibrarySpec{}, cells);
  const LibertyValidation v = validateLiberty(lib);
  EXPECT_TRUE(v.ok()) << v.summary();
  EXPECT_EQ(v.cell_count, 1u);
  EXPECT_EQ(v.table_count, 6u);  // 4 delay/transition + 2 power groups
}

// ---------------------------------------------------------------------
// Resilience: kill/resume bit-identity, incompatible-checkpoint
// rejection, and the degrade-don't-abort hole pipeline down to the
// annotated .lib output.

/// Removes the checkpoint file on construction and destruction.
struct ScopedCkpt {
  explicit ScopedCkpt(std::string p) : path(std::move(p)) { std::remove(path.c_str()); }
  ~ScopedCkpt() { std::remove(path.c_str()); }
  std::string path;
};

/// The small farm the resilience tests run: 2 kinds x 1 corner, 2x2
/// grid (fast enough to run three full times per test).
CharRequest resilienceFarm() {
  CharGrid grid = testGrid();
  grid.slews = {30e-12, 120e-12};
  CharRequest req;
  req.kinds = {ShifterKind::Sstvs, ShifterKind::InverterOnly};
  req.corners = {typicalCorner()};
  req.grid = grid;
  return req;
}

void expectFarmsIdentical(const std::vector<CharTable>& a, const std::vector<CharTable>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(identicalTables(a[i], b[i])) << "task " << i;
    EXPECT_EQ(a[i].failures.size(), b[i].failures.size()) << "task " << i;
  }
  // The strongest form of the contract: the shipped artifact itself is
  // byte-identical.
  const std::string lib_a = writeLiberty(LibertyLibrarySpec{}, libertyCellsFromCharacterization(a));
  const std::string lib_b = writeLiberty(LibertyLibrarySpec{}, libertyCellsFromCharacterization(b));
  EXPECT_EQ(lib_a, lib_b);
}

TEST(CharFarmResilience, ScalarKillResumeBitIdentical) {
  CharRequest req = resilienceFarm();
  req.grid.use_lanes = false;
  const std::vector<CharTable> ref = characterizeCells(req);

  ScopedCkpt f("test_farm_scalar.vlsckpt");
  CharRequest killed = req;
  killed.checkpoint_path = f.path;
  killed.job = std::make_shared<JobControl>();
  killed.job->cancelAfterUnits(5);  // mid-grid, mid-task (8 points total)
  EXPECT_THROW(characterizeCells(killed), JobInterrupted);

  CharRequest resume = req;
  resume.checkpoint_path = f.path;
  const std::vector<CharTable> resumed = characterizeCells(resume);
  expectFarmsIdentical(ref, resumed);

  // The finished checkpoint short-circuits a re-run entirely.
  const std::vector<CharTable> rerun = characterizeCells(resume);
  expectFarmsIdentical(ref, rerun);
}

TEST(CharFarmResilience, LaneKillResumeBitIdentical) {
  CharRequest req = resilienceFarm();
  req.grid.use_lanes = true;
  req.grid.lane_width = 2;  // two batches per task: the cursor is mid-grid
  const std::vector<CharTable> ref = characterizeCells(req);

  ScopedCkpt f("test_farm_lanes.vlsckpt");
  CharRequest killed = req;
  killed.checkpoint_path = f.path;
  killed.job = std::make_shared<JobControl>();
  killed.job->cancelAfterUnits(2);
  EXPECT_THROW(characterizeCells(killed), JobInterrupted);

  CharRequest resume = req;
  resume.checkpoint_path = f.path;
  const std::vector<CharTable> resumed = characterizeCells(resume);
  expectFarmsIdentical(ref, resumed);
}

TEST(CharFarmResilience, IncompatibleCheckpointRejected) {
  ScopedCkpt f("test_farm_incompat.vlsckpt");
  CharRequest req = resilienceFarm();
  req.grid.use_lanes = false;
  req.checkpoint_path = f.path;
  characterizeCells(req);

  // A different grid must not resume against the stored progress.
  CharRequest other = req;
  other.grid.slews = {30e-12, 60e-12, 120e-12};
  EXPECT_THROW(characterizeCells(other), InvalidInputError);

  // A different corner set likewise.
  CharRequest corner = req;
  corner.corners[0].vddi = 0.7;
  EXPECT_THROW(characterizeCells(corner), InvalidInputError);
}

TEST(CharFarmResilience, FaultedPointBecomesAnnotatedHole) {
  // Satellite acceptance: an unrecoverable injected fault at one grid
  // point must surface as a structured CharPointFailure — stage and
  // worst-node attributed — and flow through to a hole comment in a
  // still-valid .lib, instead of aborting the run.
  CharGrid grid = testGrid();
  grid.slews = {60e-12};
  grid.loads = {2e-15};  // 1x1 grid: exactly one (faulted) point
  grid.use_lanes = false;
  grid.static_metrics = false;
  HarnessConfig base;
  FaultSpec spec;
  spec.zero_pivot_node = "out";  // unlimited fires: defeats every attempt
  base.sim.fault_injector = std::make_shared<FaultInjector>(spec);

  const CharTable table =
      characterizeCell(ShifterKind::Sstvs, typicalCorner(), grid, base);
  ASSERT_EQ(table.points.size(), 1u);
  EXPECT_FALSE(table.points[0].ok);
  EXPECT_EQ(table.retried_points, 1u);
  ASSERT_EQ(table.failures.size(), 1u);
  const CharPointFailure& fail = table.failures[0];
  EXPECT_EQ(fail.point, 0u);
  EXPECT_EQ(fail.attempts, 2);  // 1 attempt + 1 escalated retry (default)
  EXPECT_FALSE(fail.stage.empty());
  EXPECT_EQ(fail.node, "out");
  EXPECT_FALSE(fail.message.empty());

  const std::vector<LibertyCellData> cells = libertyCellsFromCharacterization({table});
  ASSERT_EQ(cells.size(), 1u);
  ASSERT_EQ(cells[0].holes.size(), 1u);
  const std::string lib = writeLiberty(LibertyLibrarySpec{}, cells);
  EXPECT_NE(lib.find("characterization hole"), std::string::npos);
  EXPECT_NE(lib.find("node 'out'"), std::string::npos);
  const LibertyValidation v = validateLiberty(lib);
  EXPECT_TRUE(v.ok()) << v.summary();  // holes degrade the data, not the format
}

TEST(CharFarmResilience, CleanRunHasNoRetriesOrHoles) {
  CharRequest req = resilienceFarm();
  req.grid.use_lanes = false;
  const std::vector<CharTable> tables = characterizeCells(req);
  for (const CharTable& t : tables) {
    EXPECT_EQ(t.retried_points, 0u);
    EXPECT_TRUE(t.failures.empty());
    EXPECT_TRUE(allOk(t));
  }
}

}  // namespace
}  // namespace vls
