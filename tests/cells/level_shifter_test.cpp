// Functional tests for the comparison cells: CVS (Figure 1), Khan [6]
// SS-VS, and the combined VS (Figure 6).
#include "cells/level_shifters.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/shifter_harness.hpp"
#include "devices/sources.hpp"
#include "sim/simulator.hpp"

namespace vls {
namespace {

TEST(Cvs, ShiftsBothDirectionsInDc) {
  for (auto [vddi, vddo] : {std::pair{0.8, 1.2}, std::pair{1.2, 0.8}}) {
    for (int bit : {0, 1}) {
      Circuit c;
      const NodeId ni = c.node("vddi");
      const NodeId no = c.node("vddo");
      const NodeId in = c.node("in");
      const NodeId out = c.node("out");
      c.add<VoltageSource>("vi", ni, kGround, vddi);
      c.add<VoltageSource>("vo", no, kGround, vddo);
      c.add<VoltageSource>("vin", in, kGround, bit ? vddi : 0.0);
      buildCvs(c, "x", in, out, ni, no, {});
      Simulator sim(c);
      const auto x = sim.solveOp();
      const double expect = bit ? vddo : 0.0;  // CVS is non-inverting
      EXPECT_NEAR(x[out], expect, 0.05) << vddi << "->" << vddo << " bit " << bit;
    }
  }
}

TEST(SsvsKhan, UpShiftsDc) {
  for (int bit : {0, 1}) {
    Circuit c;
    const NodeId no = c.node("vddo");
    const NodeId in = c.node("in");
    const NodeId out = c.node("out");
    c.add<VoltageSource>("vo", no, kGround, 1.2);
    c.add<VoltageSource>("vin", in, kGround, bit ? 0.8 : 0.0);
    buildSsvsKhan(c, "x", in, out, no, {});
    Simulator sim(c);
    const auto x = sim.solveOp();
    const double expect = bit ? 0.0 : 1.2;  // inverting
    EXPECT_NEAR(x[out], expect, 0.05) << "bit " << bit;
  }
}

TEST(SsvsKhan, VirtualRailSitsBelowVddoWhenInputHigh) {
  Circuit c;
  const NodeId no = c.node("vddo");
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("vo", no, kGround, 1.2);
  c.add<VoltageSource>("vin", in, kGround, 0.8);
  const SsvsKhanHandles h = buildSsvsKhan(c, "x", in, out, no, {});
  Simulator sim(c);
  const auto x = sim.solveOp();
  // With the output low, the feedback PMOS restores vvdd to VDDO
  // (this is exactly the leaky state of the [6]-style shifter).
  EXPECT_GT(x[h.vvdd], 1.0);
}

TEST(SsvsKhan, LeaksWhenInputHighIsBelowVddo) {
  // The defining weakness the paper targets: measure the static VDDO
  // current with in = 0.8 at VDDO = 1.2; it must far exceed the in = 0
  // state's leakage.
  auto leak_for = [](double vin_level) {
    Circuit c;
    const NodeId no = c.node("vddo");
    const NodeId in = c.node("in");
    const NodeId out = c.node("out");
    auto& vo = c.add<VoltageSource>("vo", no, kGround, 1.2);
    c.add<VoltageSource>("vin", in, kGround, vin_level);
    buildSsvsKhan(c, "x", in, out, no, {});
    Simulator sim(c);
    const auto x = sim.solveOp();
    return std::fabs(x[vo.branchIndex()]);
  };
  const double leak_high_in = leak_for(0.8);
  const double leak_low_in = leak_for(0.0);
  EXPECT_GT(leak_high_in, 20.0 * leak_low_in);
  EXPECT_GT(leak_high_in, 10e-9);  // tens of nA class, as reported for [6]
}

TEST(CombinedVs, BothModesViaHarness) {
  for (auto [vddi, vddo] : {std::pair{0.8, 1.2}, std::pair{1.2, 0.8}}) {
    HarnessConfig cfg;
    cfg.kind = ShifterKind::CombinedVs;
    cfg.vddi = vddi;
    cfg.vddo = vddo;
    const ShifterMetrics m = measureShifter(cfg);
    EXPECT_TRUE(m.functional) << vddi << "->" << vddo;
    EXPECT_GT(m.delay_rise, 0.0);
    EXPECT_GT(m.delay_fall, 0.0);
  }
}

TEST(CombinedVs, RequiresCorrectControl) {
  // Steer the mux the WRONG way for an up-shift: the inverter path
  // (input at 0.8, supply 1.2) still inverts logically, so the circuit
  // may pass bits, but it must leak far more than the correct path.
  Circuit c;
  const NodeId no = c.node("vddo");
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  auto& vo = c.add<VoltageSource>("vo", no, kGround, 1.2);
  c.add<VoltageSource>("vin", in, kGround, 0.8);
  const NodeId sel = c.node("sel");
  const NodeId selb = c.node("selb");
  c.add<VoltageSource>("vs", sel, kGround, 0.0);    // wrong: inverter path
  c.add<VoltageSource>("vsb", selb, kGround, 1.2);
  buildCombinedVs(c, "x", in, out, sel, selb, no, {});
  Simulator sim(c);
  const auto x = sim.solveOp();
  const double leak_wrong = std::fabs(x[vo.branchIndex()]);
  EXPECT_GT(leak_wrong, 100e-9);  // the near-threshold PMOS path burns
}

TEST(CombinedVs, FetListCoversAllSubcells) {
  Circuit c;
  const NodeId no = c.node("vddo");
  CombinedVsHandles h = buildCombinedVs(c, "x", c.node("in"), c.node("out"), c.node("sel"),
                                        c.node("selb"), no, {});
  // 2 input TGs (4) + 2 keepers + inverter (2) + SSVS (7) + mux (4).
  EXPECT_GE(h.fets.size(), 17u);
}

}  // namespace
}  // namespace vls
