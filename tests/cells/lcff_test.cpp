// Level-converting flip-flop: data from the VDDI domain is sampled on
// the VDDO-domain clock edge with only the destination supply present.
#include "cells/lcff.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/measure.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "numeric/interpolation.hpp"
#include "sim/simulator.hpp"

namespace vls {
namespace {

struct LcffRun {
  Circuit circuit;
  TransientResult run{std::vector<std::string>{}, 0};
};

// Clock: rising edges at 1, 3, 5, 7 ns (period 2 ns). Data (VDDI swing):
// the given PWL levels.
TransientResult runLcff(double /*vddi_v*/, double vddo_v, Circuit& c,
                        const std::vector<double>& d_times, const std::vector<double>& d_vals) {
  const NodeId vddo = c.node("vddo");
  const NodeId d = c.node("d");
  const NodeId clk = c.node("clk");
  const NodeId q = c.node("q");
  c.add<VoltageSource>("v_vddo", vddo, kGround, vddo_v);
  PulseSpec ck;
  ck.v1 = 0;
  ck.v2 = vddo_v;
  ck.delay = 1e-9;
  ck.rise = ck.fall = 20e-12;
  ck.width = 1e-9 - 20e-12;
  ck.period = 2e-9;
  c.add<VoltageSource>("v_clk", clk, kGround, Waveform::pulse(ck));
  c.add<VoltageSource>("v_d", d, kGround, Waveform::pwl(d_times, d_vals));
  buildLcff(c, "xff", d, clk, q, vddo, {});
  c.add<Capacitor>("cl", q, kGround, 1e-15);
  Simulator sim(c);
  return sim.transient(8e-9, 50e-12);
}

TEST(Lcff, CapturesOnRisingEdgeUpShift) {
  // d: 1 until 1.6 ns, 0 until 3.6 ns, then 1.
  Circuit c;
  const double vi = 0.8;
  const auto tr = runLcff(vi, 1.2, c,
                          {0.0, 1.6e-9, 1.62e-9, 3.6e-9, 3.62e-9}, {vi, vi, 0.0, 0.0, vi});
  const Signal q = tr.node("q");
  // Edge 1 (1 ns): d=1 -> q=1.2 shortly after.
  EXPECT_NEAR(interpLinear(q.time, q.value, 1.9e-9), 1.2, 0.06);
  // Edge 2 (3 ns): d=0 -> q=0.
  EXPECT_NEAR(interpLinear(q.time, q.value, 3.9e-9), 0.0, 0.06);
  // Edge 3 (5 ns): d=1 again -> q=1.2.
  EXPECT_NEAR(interpLinear(q.time, q.value, 5.9e-9), 1.2, 0.06);
}

TEST(Lcff, HoldsBetweenEdges) {
  // Data toggles mid-cycle (at 1.6 ns, well after the 1 ns edge): q must
  // NOT change until the next rising edge at 3 ns.
  Circuit c;
  const double vi = 0.8;
  const auto tr = runLcff(vi, 1.2, c,
                          {0.0, 1.6e-9, 1.62e-9}, {vi, vi, 0.0});
  const Signal q = tr.node("q");
  EXPECT_NEAR(interpLinear(q.time, q.value, 2.8e-9), 1.2, 0.06);  // still old value
  EXPECT_NEAR(interpLinear(q.time, q.value, 3.9e-9), 0.0, 0.06);  // updated after edge
}

TEST(Lcff, WorksForDownShiftToo) {
  // 1.4 V data into a 0.9 V flop: true level conversion inside the FF.
  Circuit c;
  const double vi = 1.4;
  const auto tr = runLcff(vi, 0.9, c,
                          {0.0, 1.6e-9, 1.62e-9, 3.6e-9, 3.62e-9}, {vi, vi, 0.0, 0.0, vi});
  const Signal q = tr.node("q");
  EXPECT_NEAR(interpLinear(q.time, q.value, 1.9e-9), 0.9, 0.05);
  EXPECT_NEAR(interpLinear(q.time, q.value, 3.9e-9), 0.0, 0.05);
  EXPECT_NEAR(interpLinear(q.time, q.value, 5.9e-9), 0.9, 0.05);
}

TEST(Lcff, ClkToQDelayIsReasonable) {
  // Start from the conditioned d=1 state (q initially high); d falls at
  // 2.5 ns inside the transparent master window, so the 3 ns clock edge
  // launches a clean falling q for the clk-to-q measurement.
  Circuit c;
  const double vi = 0.8;
  const auto tr = runLcff(vi, 1.2, c, {0.0, 2.5e-9, 2.52e-9}, {vi, vi, 0.0});
  const Signal clk = tr.node("clk");
  const Signal q = tr.node("q");
  const auto d =
      propagationDelay(clk, q, 0.6, CrossDir::Rising, 0.6, CrossDir::Falling, 2.9e-9);
  ASSERT_TRUE(d.has_value());
  EXPECT_GT(*d, 10e-12);
  EXPECT_LT(*d, 400e-12);
}

TEST(Lcff, SingleSupplyOnly) {
  Circuit c;
  runLcff(0.8, 1.2, c, {0.0}, {0.8});
  // The whole flop (shifter included) references only vddo + ground:
  // no device terminal touches a second rail.
  EXPECT_EQ(c.findDevice("v_vddi"), nullptr);
  int fet_count = 0;
  for (const auto& dev : c.devices()) {
    if (dev->name().rfind("xff.", 0) == 0) ++fet_count;
  }
  EXPECT_GE(fet_count, 25);  // SS-TVS (13) + clocking + latches
}

}  // namespace
}  // namespace vls
