#include "cells/interconnect.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/measure.hpp"
#include "cells/sstvs.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "numeric/interpolation.hpp"
#include "sim/simulator.hpp"

namespace vls {
namespace {

TEST(Wire, StructureAndTotals) {
  Circuit c;
  WireSpec spec;
  spec.length = 200e-6;
  spec.segments = 4;
  const WireHandles h = buildWire(c, "w", c.node("a"), c.node("b"), spec);
  EXPECT_EQ(h.taps.size(), 3u);
  EXPECT_NEAR(h.total_r, 250e3 * 200e-6, 1e-6);
  EXPECT_NEAR(h.total_c, 200e-12 * 200e-6, 1e-20);
  // 4 R + 8 C devices.
  EXPECT_EQ(c.devices().size(), 12u);
  EXPECT_THROW(buildWire(c, "bad", c.node("a"), c.node("b"), WireSpec{1e-6, 1, 1, 0}),
               InvalidInputError);
}

TEST(Wire, StepResponseNearElmore) {
  // Ideal step into the wire: 50% arrival within ~25% of the Elmore
  // estimate (Elmore overestimates a distributed line's 50% point).
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  PulseSpec p;
  p.v1 = 0;
  p.v2 = 1;
  p.rise = p.fall = 1e-13;
  p.width = 1e-6;
  c.add<VoltageSource>("v", a, kGround, Waveform::pulse(p));
  WireSpec spec;
  spec.length = 1e-3;  // 1 mm global wire: Rw=250, Cw=200fF
  spec.segments = 16;
  buildWire(c, "w", a, b, spec);
  Simulator sim(c);
  const auto tr = sim.transient(200e-12, 2e-12);
  const Signal vb = tr.node("b");
  const auto t50 = crossTime(vb, 0.5, CrossDir::Rising);
  ASSERT_TRUE(t50);
  const double elmore = wireElmoreDelay(spec);
  EXPECT_NEAR(*t50, elmore, elmore * 0.30);
}

TEST(Wire, DcTransparent) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  c.add<VoltageSource>("v", a, kGround, 1.2);
  buildWire(c, "w", a, b, {});
  Simulator sim(c);
  const auto x = sim.solveOp();
  EXPECT_NEAR(x[b], 1.2, 1e-6);  // no DC load: wire passes the level
}

TEST(Wire, ShiftedSignalSurvivesLongWire) {
  // SS-TVS output driving 0.5 mm of wire into a far-end load: the level
  // must still reach the rail, with extra delay roughly the wire's RC.
  Circuit c;
  const NodeId vddo = c.node("vddo");
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  const NodeId far = c.node("far");
  c.add<VoltageSource>("vo", vddo, kGround, 1.2);
  PulseSpec p;
  p.v1 = 0.8;
  p.v2 = 0.0;
  p.delay = 0.5e-9;
  p.rise = p.fall = 20e-12;
  p.width = 2e-9;
  c.add<VoltageSource>("vin", in, kGround, Waveform::pulse(p));
  buildSstvs(c, "x", in, out, vddo, {});
  WireSpec spec;
  spec.length = 0.5e-3;
  buildWire(c, "w", out, far, spec);
  c.add<Capacitor>("cl", far, kGround, 2e-15);
  Simulator sim(c);
  const auto tr = sim.transient(3e-9, 20e-12);
  const Signal vf = tr.node("far");
  const auto t_rise = crossTime(vf, 0.6, CrossDir::Rising, 0.4e-9);
  ASSERT_TRUE(t_rise);
  EXPECT_NEAR(maxValue(vf, 1.5e-9, 2.4e-9), 1.2, 0.05);
}

TEST(Wire, ElmoreWithDriverAndLoadIsLarger) {
  WireSpec spec;
  EXPECT_GT(wireElmoreDelay(spec, 5e3, 2e-15), wireElmoreDelay(spec));
}

TEST(Wire, AcCornerTracksRc) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  auto& v = c.add<VoltageSource>("v", a, kGround, 0.0);
  v.setAcMagnitude(1.0);
  WireSpec spec;
  spec.length = 1e-3;
  spec.segments = 12;
  buildWire(c, "w", a, b, spec);
  Simulator sim(c);
  const AcResult res = sim.ac(1e6, 1e12, 8);
  const auto corner = res.cornerFrequency("b");
  ASSERT_TRUE(corner);
  // f50 of a distributed line ~ 1/(2 pi 0.5 Rw Cw) within a factor ~3.
  const double f_est = 1.0 / (2.0 * M_PI * 0.5 * 250.0 * 200e-15);
  EXPECT_GT(*corner, f_est / 3.0);
  EXPECT_LT(*corner, f_est * 3.0);
}

}  // namespace
}  // namespace vls
