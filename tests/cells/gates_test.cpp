#include "cells/gates.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "sim/simulator.hpp"

namespace vls {
namespace {

// Helper: evaluate a 2-input gate's DC truth table output at given
// logic inputs (levels 0 / vdd).
class GateFixture : public ::testing::Test {
 protected:
  double evalGate2(const char* which, int a, int b, double vdd_v = 1.2) {
    Circuit c;
    const NodeId vdd = c.node("vdd");
    const NodeId na = c.node("a");
    const NodeId nb = c.node("b");
    const NodeId out = c.node("out");
    c.add<VoltageSource>("vdd", vdd, kGround, vdd_v);
    c.add<VoltageSource>("va", na, kGround, a ? vdd_v : 0.0);
    c.add<VoltageSource>("vb", nb, kGround, b ? vdd_v : 0.0);
    if (std::string(which) == "nor") {
      buildNor2(c, "x", na, nb, out, vdd);
    } else {
      buildNand2(c, "x", na, nb, out, vdd);
    }
    Simulator sim(c);
    return sim.solveOp()[out];
  }
};

TEST_F(GateFixture, Nor2TruthTable) {
  EXPECT_NEAR(evalGate2("nor", 0, 0), 1.2, 5e-3);
  EXPECT_NEAR(evalGate2("nor", 0, 1), 0.0, 5e-3);
  EXPECT_NEAR(evalGate2("nor", 1, 0), 0.0, 5e-3);
  EXPECT_NEAR(evalGate2("nor", 1, 1), 0.0, 5e-3);
}

TEST_F(GateFixture, Nand2TruthTable) {
  EXPECT_NEAR(evalGate2("nand", 0, 0), 1.2, 5e-3);
  EXPECT_NEAR(evalGate2("nand", 0, 1), 1.2, 5e-3);
  EXPECT_NEAR(evalGate2("nand", 1, 0), 1.2, 5e-3);
  EXPECT_NEAR(evalGate2("nand", 1, 1), 0.0, 5e-3);
}

TEST_F(GateFixture, GatesWorkAcrossSupplyRange) {
  for (double vdd : {0.8, 1.0, 1.4}) {
    EXPECT_NEAR(evalGate2("nor", 0, 0, vdd), vdd, 5e-3);
    EXPECT_NEAR(evalGate2("nand", 1, 1, vdd), 0.0, 5e-3);
  }
}

TEST(Gates, InverterCreatesTwoFets) {
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const GateHandles h = buildInverter(c, "x", c.node("in"), c.node("out"), vdd);
  EXPECT_EQ(h.fets.size(), 2u);
  EXPECT_NE(c.findDevice("x.mp"), nullptr);
  EXPECT_NE(c.findDevice("x.mn"), nullptr);
}

TEST(Gates, TransmissionGatePassesBothRails) {
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  const NodeId ctl = c.node("ctl");
  const NodeId ctlb = c.node("ctlb");
  c.add<VoltageSource>("vdd", vdd, kGround, 1.2);
  auto& va = c.add<VoltageSource>("va", a, kGround, 1.2);
  c.add<VoltageSource>("vc", ctl, kGround, 1.2);
  c.add<VoltageSource>("vcb", ctlb, kGround, 0.0);
  buildTgate(c, "tg", a, b, ctl, ctlb, vdd);
  c.add<Resistor>("rl", b, kGround, 1e9);
  Simulator sim(c);
  auto x = sim.solveOp();
  EXPECT_NEAR(x[b], 1.2, 5e-3);  // full rail: PMOS carries the high level
  va.setWaveform(Waveform::dc(0.0));
  x = sim.solveOp();
  EXPECT_NEAR(x[b], 0.0, 5e-3);  // NMOS carries the low level
}

TEST(Gates, TransmissionGateBlocksWhenOff) {
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  c.add<VoltageSource>("vdd", vdd, kGround, 1.2);
  c.add<VoltageSource>("va", a, kGround, 1.2);
  const NodeId ctl = c.node("ctl");
  const NodeId ctlb = c.node("ctlb");
  c.add<VoltageSource>("vc", ctl, kGround, 0.0);
  c.add<VoltageSource>("vcb", ctlb, kGround, 1.2);
  buildTgate(c, "tg", a, b, ctl, ctlb, vdd);
  c.add<Resistor>("rl", b, kGround, 1e6);
  Simulator sim(c);
  const auto x = sim.solveOp();
  EXPECT_LT(x[b], 0.05);  // only leakage reaches the load
}

TEST(Gates, Mux2Selects) {
  Circuit c;
  const NodeId vdd = c.node("vdd");
  c.add<VoltageSource>("vdd", vdd, kGround, 1.2);
  const NodeId i0 = c.node("i0");
  const NodeId i1 = c.node("i1");
  c.add<VoltageSource>("v0", i0, kGround, 0.3);
  c.add<VoltageSource>("v1", i1, kGround, 0.9);
  const NodeId sel = c.node("sel");
  const NodeId selb = c.node("selb");
  auto& vs = c.add<VoltageSource>("vs", sel, kGround, 0.0);
  auto& vsb = c.add<VoltageSource>("vsb", selb, kGround, 1.2);
  const NodeId out = c.node("out");
  buildMux2(c, "mx", i0, i1, sel, selb, out, vdd);
  c.add<Resistor>("rl", out, kGround, 1e9);
  Simulator sim(c);
  auto x = sim.solveOp();
  EXPECT_NEAR(x[out], 0.3, 0.01);
  vs.setWaveform(Waveform::dc(1.2));
  vsb.setWaveform(Waveform::dc(0.0));
  x = sim.solveOp();
  EXPECT_NEAR(x[out], 0.9, 0.01);
}

TEST(Gates, BufferChainParityAndCount) {
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId in = c.node("in");
  c.add<VoltageSource>("vdd", vdd, kGround, 1.2);
  c.add<VoltageSource>("vin", in, kGround, 1.2);
  const GateHandles h = buildBufferChain(c, "bc", in, vdd, 4);
  EXPECT_EQ(h.fets.size(), 8u);
  Simulator sim(c);
  const auto x = sim.solveOp();
  EXPECT_NEAR(x[h.out], 1.2, 5e-3);  // even stages: non-inverting
}

TEST(Gates, MosCapHasNoDcPath) {
  Circuit c;
  const NodeId n = c.node("n");
  c.add<CurrentSource>("i", kGround, n, 0.0);
  buildMosCap(c, "mc", n, MosSize{500e-9, 200e-9});
  Simulator sim(c);
  const auto x = sim.solveOp();
  EXPECT_NEAR(x[n], 0.0, 1e-6);  // held only by gmin
}

}  // namespace
}  // namespace vls
