#include "cells/fabric.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "analysis/fabric_bootstrap.hpp"
#include "base/error.hpp"
#include "circuit/circuit.hpp"
#include "devices/passive.hpp"
#include "numeric/interpolation.hpp"
#include "sim/fault_injection.hpp"
#include "sim/simulator.hpp"

namespace vls {
namespace {

FabricSpec smallSpec() {
  FabricSpec spec;
  spec.islands = 3;
  spec.logic_stages = 2;
  spec.wire.segments = 4;
  return spec;
}

// Shifter cascades defeat a cold zero start: every fabric solve gets
// the tiled nodeset and a patient pseudo-transient rung.
SimOptions fabricOptions(const Circuit& c, const FabricSpec& spec) {
  SimOptions opt;
  opt.nodeset = std::make_shared<const std::vector<double>>(fabricDcGuess(c, spec));
  opt.recovery.ptran_max_steps = 2000;
  opt.recovery.ptran_grow = 2.0;
  return opt;
}

TEST(Fabric, ValidatesSpec) {
  Circuit c;
  FabricSpec bad;
  bad.islands = 0;
  EXPECT_THROW(buildFabric(c, bad), InvalidInputError);
  bad = FabricSpec{};
  bad.supplies.clear();
  EXPECT_THROW(buildFabric(c, bad), InvalidInputError);
  c.add<Resistor>("r", c.node("a"), kGround, 1.0);
  EXPECT_THROW(buildFabric(c, FabricSpec{}), InvalidInputError);
}

TEST(Fabric, IslandAndBoundaryBookkeeping) {
  Circuit c;
  const FabricHandles fab = buildFabric(c, smallSpec());
  ASSERT_EQ(fab.islands.size(), 3u);
  ASSERT_EQ(fab.boundaries.size(), 2u);
  EXPECT_EQ(fab.final_out, fab.islands.back().out);
  ASSERT_NE(fab.input, nullptr);

  // Every device carries an island tag, and every island owns devices.
  ASSERT_EQ(fab.device_island.size(), c.devices().size());
  std::vector<size_t> per_island(3, 0);
  for (int32_t tag : fab.device_island) {
    ASSERT_GE(tag, 0);
    ASSERT_LT(tag, 3);
    ++per_island[static_cast<size_t>(tag)];
  }
  for (size_t k = 0; k < 3; ++k) EXPECT_GT(per_island[k], 0u);

  // Supplies cycle through the spec list; rails are distinct nets.
  const FabricSpec spec = smallSpec();
  for (size_t k = 0; k < 3; ++k) {
    EXPECT_DOUBLE_EQ(fab.islands[k].supply, spec.supplies[k % spec.supplies.size()]);
    for (size_t j = k + 1; j < 3; ++j) EXPECT_NE(fab.islands[k].rail, fab.islands[j].rail);
  }
  // Boundary k couples island k to island k+1 through a dedicated net.
  for (size_t k = 0; k < 2; ++k) {
    EXPECT_EQ(fab.boundaries[k].from_island, static_cast<int>(k));
    EXPECT_EQ(fab.boundaries[k].to_island, static_cast<int>(k + 1));
    EXPECT_EQ(c.nodeName(fab.boundaries[k].node), "bnd" + std::to_string(k));
  }

  const auto part = makePartitionSpec(fab);
  EXPECT_EQ(part->num_blocks, 3);
  EXPECT_EQ(part->device_block, fab.device_island);
}

TEST(Fabric, DcOpFlatMatchesBbd) {
  Circuit flat_c;
  const FabricHandles flat_fab = buildFabric(flat_c, smallSpec());
  Simulator flat(flat_c, fabricOptions(flat_c, smallSpec()));
  const auto x_flat = flat.solveOp();

  Circuit bbd_c;
  const FabricHandles bbd_fab = buildFabric(bbd_c, smallSpec());
  SimOptions opt = fabricOptions(bbd_c, smallSpec());
  opt.lu_ordering = LuOrdering::MinDegree;
  opt.partition = makePartitionSpec(bbd_fab);
  // 3 islands is below the Auto threshold — this test wants BBD.
  opt.partition_use = PartitionUse::ForceBbd;
  Simulator bbd(bbd_c, opt);
  ASSERT_NE(bbd.bbdSolver(), nullptr);
  EXPECT_EQ(bbd.partitionDecision(), "bbd (forced)");
  const auto x_bbd = bbd.solveOp();

  ASSERT_EQ(x_flat.size(), x_bbd.size());
  EXPECT_EQ(bbd.bbdSolver()->blockCount(), 3u);
  EXPECT_GT(bbd.bbdSolver()->borderSize(), 0u);
  for (size_t i = 0; i < x_flat.size(); ++i) EXPECT_NEAR(x_flat[i], x_bbd[i], 1e-7);

  // Rails sit at their programmed supplies in both solves.
  for (size_t k = 0; k < 3; ++k) {
    EXPECT_NEAR(x_flat[flat_fab.islands[k].rail], flat_fab.islands[k].supply, 1e-9);
    EXPECT_NEAR(x_bbd[bbd_fab.islands[k].rail], bbd_fab.islands[k].supply, 1e-9);
  }
}

TEST(Fabric, TransientFlatMatchesBbd) {
  const double t_stop = 3e-9;
  Circuit flat_c;
  const FabricHandles flat_fab = buildFabric(flat_c, smallSpec());
  Simulator flat(flat_c, fabricOptions(flat_c, smallSpec()));
  const TransientResult tr_flat = flat.transient(t_stop, 0.1e-9);

  Circuit bbd_c;
  const FabricHandles bbd_fab = buildFabric(bbd_c, smallSpec());
  SimOptions opt = fabricOptions(bbd_c, smallSpec());
  opt.lu_ordering = LuOrdering::MinDegree;
  opt.partition = makePartitionSpec(bbd_fab);
  opt.partition_use = PartitionUse::ForceBbd;
  Simulator bbd(bbd_c, opt);
  const TransientResult tr_bbd = bbd.transient(t_stop, 0.1e-9);

  // Same recovery behavior (a clean run on both sides).
  EXPECT_EQ(tr_flat.recovery_events.size(), tr_bbd.recovery_events.size());

  // Waveforms agree within LTE-level tolerance on a common grid.
  const std::string out = flat_c.nodeName(flat_fab.final_out);
  const Signal s_flat = tr_flat.node(out);
  const Signal s_bbd = tr_bbd.node(out);
  for (int i = 0; i <= 100; ++i) {
    const double t = t_stop * i / 100.0;
    const double vf = interpLinear(s_flat.time, s_flat.value, t);
    const double vb = interpLinear(s_bbd.time, s_bbd.value, t);
    EXPECT_NEAR(vf, vb, 5e-3) << "t=" << t;
  }
}

// One fabric transient under parallel sharded assembly with the given
// worker count / batch width (0 threads = the VLS_THREADS pool width).
TransientResult runParallelFabricTransient(int threads, int batch_width,
                                           std::shared_ptr<FaultInjector> injector = nullptr) {
  Circuit c;
  const FabricHandles fab = buildFabric(c, smallSpec());
  SimOptions opt = fabricOptions(c, smallSpec());
  applyFabricSolverOptions(opt, fab);
  opt.assembly_threads = threads;
  opt.device_batch_width = batch_width;
  opt.fault_injector = std::move(injector);
  Simulator sim(c, opt);
  return sim.transient(3e-9, 0.1e-9);
}

// Every accepted step, every unknown, and every engine diagnostic must
// be bitwise identical: the sharded assembler's determinism contract.
void expectBitIdentical(const TransientResult& a, const TransientResult& b) {
  ASSERT_EQ(a.steps(), b.steps());
  for (size_t s = 0; s < a.steps(); ++s) {
    ASSERT_EQ(a.time()[s], b.time()[s]) << "step " << s;
    ASSERT_EQ(a.solution(s), b.solution(s)) << "step " << s;
  }
  EXPECT_EQ(a.total_newton_iterations, b.total_newton_iterations);
  EXPECT_EQ(a.rejected_steps, b.rejected_steps);
  ASSERT_EQ(a.recovery_events.size(), b.recovery_events.size());
  for (size_t e = 0; e < a.recovery_events.size(); ++e) {
    EXPECT_EQ(a.recovery_events[e].context, b.recovery_events[e].context);
    EXPECT_EQ(a.recovery_events[e].stages.size(), b.recovery_events[e].stages.size());
  }
}

TEST(Fabric, ParallelAssemblyInvariance) {
  const TransientResult t1 = runParallelFabricTransient(1, 8);
  const TransientResult t4 = runParallelFabricTransient(4, 8);
  const TransientResult t1_scalar = runParallelFabricTransient(1, 1);
  expectBitIdentical(t1, t4);
  expectBitIdentical(t1, t1_scalar);
}

TEST(Fabric, ParallelAssemblyMatchesSerial) {
  const double t_stop = 3e-9;
  Circuit serial_c;
  const FabricHandles serial_fab = buildFabric(serial_c, smallSpec());
  SimOptions opt = fabricOptions(serial_c, smallSpec());
  opt.lu_ordering = LuOrdering::MinDegree;
  Simulator serial(serial_c, opt);
  const TransientResult tr_serial = serial.transient(t_stop, 0.1e-9);

  const TransientResult tr_par = runParallelFabricTransient(4, 8);
  EXPECT_EQ(tr_serial.recovery_events.size(), tr_par.recovery_events.size());

  // Lane-kernel vs scalar model evaluation differs at the ~1e-7 level,
  // so waveforms agree within LTE tolerance, not bitwise.
  const std::string out = serial_c.nodeName(serial_fab.final_out);
  const Signal s_serial = tr_serial.node(out);
  const Signal s_par = tr_par.node(out);
  for (int i = 0; i <= 100; ++i) {
    const double t = t_stop * i / 100.0;
    const double vs = interpLinear(s_serial.time, s_serial.value, t);
    const double vp = interpLinear(s_par.time, s_par.value, t);
    EXPECT_NEAR(vs, vp, 5e-3) << "t=" << t;
  }
}

TEST(Fabric, ParallelAssemblyFaultInjectionInvariant) {
  // A budgeted mid-transient Newton abort forces rejected steps and a
  // retry; the whole recovery trajectory must not depend on the worker
  // count.
  FaultSpec spec;
  spec.fail_newton_at_iteration = 1;
  spec.arm_time = 1e-9;
  spec.max_fires = 2;
  const TransientResult t1 =
      runParallelFabricTransient(1, 8, std::make_shared<FaultInjector>(spec));
  const TransientResult t4 =
      runParallelFabricTransient(4, 8, std::make_shared<FaultInjector>(spec));
  EXPECT_GE(t1.rejected_steps, 1u);
  expectBitIdentical(t1, t4);
}

TEST(Fabric, MinDegreeOrderingCutsFillAndReusesAnalysis) {
  FabricSpec spec;
  spec.islands = 50;
  spec.logic_stages = 2;
  spec.wire.segments = 4;
  spec.related_work_shifters = false;

  Circuit nat_c;
  buildFabric(nat_c, spec);
  SimOptions opt = fabricOptions(nat_c, spec);
  Simulator nat(nat_c, opt);
  nat.solveOp();
  const size_t fill_nat = nat.flatLu().fillCount();

  Circuit amd_c;
  buildFabric(amd_c, spec);
  opt.lu_ordering = LuOrdering::MinDegree;
  Simulator amd(amd_c, opt);
  const auto x = amd.solveOp();
  const size_t fill_amd = amd.flatLu().fillCount();

  // The global nets are numbered first, so natural order chews through
  // long-range fill; minimum degree must cut it by a wide margin.
  EXPECT_LT(fill_amd, fill_nat / 2);

  // On the warm path (no recovery ladder, no degraded pivots) the
  // ordered symbolic analysis is computed once and every later Newton
  // iteration replays it numerically.
  Simulator warm(amd_c, opt);
  warm.solveOp(x);
  EXPECT_EQ(warm.flatLu().symbolicFactorizations(), 1u);
  EXPECT_GE(warm.flatLu().numericRefactorizations(), 1u);
  // Row pivoting is value-dependent, so the exact fill can differ from
  // the laddered solve's — but it must stay in the ordered regime.
  EXPECT_LT(warm.flatLu().fillCount(), fill_nat / 2);
}

}  // namespace
}  // namespace vls
