// Behavioural tests of the SS-TVS cell itself, checking every
// operational statement of Section 3 of the paper against simulation.
#include "cells/sstvs.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "numeric/interpolation.hpp"

#include "analysis/measure.hpp"
#include "analysis/shifter_harness.hpp"
#include "devices/sources.hpp"
#include "sim/simulator.hpp"

namespace vls {
namespace {

TEST(Sstvs, StructureMatchesReconstruction) {
  Circuit c;
  const NodeId vddo = c.node("vddo");
  const SstvsHandles h = buildSstvs(c, "x", c.node("in"), c.node("out"), vddo, {});
  // NOR (4) + M1..M8 (8) + MC (1).
  EXPECT_EQ(h.fets.size(), 13u);
  EXPECT_NE(c.findDevice("x.m1"), nullptr);
  EXPECT_NE(c.findDevice("x.mc"), nullptr);
  EXPECT_NE(c.findDevice("x.nor.mpa"), nullptr);
}

TEST(Sstvs, VtAssignmentsFollowThePaper) {
  Circuit c;
  const NodeId vddo = c.node("vddo");
  buildSstvs(c, "x", c.node("in"), c.node("out"), vddo, {});
  auto model_of = [&](const char* name) {
    auto* fet = dynamic_cast<Mosfet*>(c.findDevice(name));
    EXPECT_NE(fet, nullptr) << name;
    return fet->model().vt0;
  };
  EXPECT_DOUBLE_EQ(model_of("x.m4"), 0.44);  // high-VT PMOS
  EXPECT_DOUBLE_EQ(model_of("x.m6"), 0.49);  // high-VT NMOS
  EXPECT_DOUBLE_EQ(model_of("x.m8"), 0.19);  // low-VT NMOS (paper: 0.19 V)
  EXPECT_DOUBLE_EQ(model_of("x.m1"), 0.39);  // nominal
}

TEST(Sstvs, AblationTogglesChangeModels) {
  Circuit c;
  SstvsSizing sz;
  sz.m4_high_vt = false;
  sz.m6_high_vt = false;
  sz.m8_low_vt = false;
  buildSstvs(c, "x", c.node("in"), c.node("out"), c.node("vddo"), sz);
  auto vt_of = [&](const char* name) {
    return dynamic_cast<Mosfet*>(c.findDevice(name))->model().vt0;
  };
  EXPECT_DOUBLE_EQ(vt_of("x.m4"), 0.39);
  EXPECT_DOUBLE_EQ(vt_of("x.m6"), 0.39);
  EXPECT_DOUBLE_EQ(vt_of("x.m8"), 0.39);
}

// DC state with input held high: the paper's Section 3 narrative.
class SstvsStaticHigh : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(SstvsStaticHigh, InternalNodesMatchSection3) {
  const auto [vddi, vddo] = GetParam();
  Circuit c;
  const NodeId no = c.node("vddo");
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("vo", no, kGround, vddo);
  c.add<VoltageSource>("vin", in, kGround, vddi);
  const SstvsHandles h = buildSstvs(c, "x", in, out, no, {});
  Simulator sim(c);
  const auto x = sim.solveOp();
  // in high: M6 pulls node1 low; M3 charges node2 to VDDO; out = 0.
  EXPECT_NEAR(x[h.node1], 0.0, 0.05);
  EXPECT_NEAR(x[h.node2], vddo, 0.05);
  EXPECT_NEAR(x[out], 0.0, 0.05);
  // ctrl charges to min(VDDI, VDDO - VT8) or min(VDDO, VDDI - VT7).
  // That bound describes the loaded/dynamic level; at true DC with zero
  // load the pass devices equilibrate decades into subthreshold and the
  // node can creep up to the smaller rail. Accept the band between the
  // VT-drop bound (minus an EKV slope-factor margin) and the rail.
  const double ctrl = x[h.ctrl];
  const double bound =
      vddi < vddo ? std::min(vddi, vddo - 0.19) : std::min(vddo, vddi - 0.39);
  EXPECT_GT(ctrl, bound - 0.25) << "vddi=" << vddi << " vddo=" << vddo;
  EXPECT_LT(ctrl, std::min(vddi, vddo) + 0.05) << "vddi=" << vddi << " vddo=" << vddo;
  // M1 must be off: ctrl cannot exceed in enough to turn it on.
  EXPECT_LT(ctrl - std::min(vddi, x[h.node2]), 0.2);
}

INSTANTIATE_TEST_SUITE_P(Corners, SstvsStaticHigh,
                         ::testing::Values(std::pair{0.8, 1.2}, std::pair{1.2, 0.8},
                                           std::pair{0.8, 1.4}, std::pair{1.4, 0.8},
                                           std::pair{1.0, 1.0}));

TEST(Sstvs, TimingDiagramSequenceMatchesFigure5) {
  // Drive 1 -> 0 -> 1 and check the causal chain the paper describes:
  // in falls => M1 (gate = stored ctrl) discharges node2 => out rises;
  // in rises => out falls fast through the NOR, node1 falls, node2
  // recharges, ctrl recharges.
  HarnessConfig cfg;
  cfg.kind = ShifterKind::Sstvs;
  cfg.vddi = 0.8;
  cfg.vddo = 1.2;
  cfg.bits = {1, 0, 1};
  ShifterTestbench tb(cfg);
  const ShifterMetrics m = tb.measure();
  EXPECT_TRUE(m.functional);
  const TransientResult& run = tb.lastRun();
  const Signal ctrl = run.node("xdut.ctrl");
  const Signal node2 = run.node("xdut.node2");
  const Signal out = run.node("out");

  // While in is high (first bit), ctrl holds near min(VDDI, VDDO-VT8).
  EXPECT_NEAR(interpLinear(ctrl.time, ctrl.value, 0.9e-9), 0.8, 0.1);
  // After in falls, node2 collapses and out rises; ctrl partially
  // discharges through M2/M8 as M2 turns off, but retains charge.
  EXPECT_LT(interpLinear(node2.time, node2.value, 1.9e-9), 0.1);
  EXPECT_NEAR(interpLinear(out.time, out.value, 1.9e-9), 1.2, 0.05);
  const double ctrl_retained = interpLinear(ctrl.time, ctrl.value, 1.9e-9);
  EXPECT_GT(ctrl_retained, 0.3);
  EXPECT_LT(ctrl_retained, 0.8);
  // Third bit: everything returns to the in-high state.
  EXPECT_LT(interpLinear(out.time, out.value, 2.9e-9), 0.05);
  EXPECT_NEAR(interpLinear(node2.time, node2.value, 2.9e-9), 1.2, 0.1);
}

TEST(Sstvs, TemporaryNorLeakPathIsCutByNode2) {
  // Section 3: when VDDI < VDDO, the in-driven NOR PMOS cannot turn
  // fully off, but node2 rising to VDDO cuts the path. Verify the
  // static state has no strong VDDO->GND current even with in at VDDI.
  Circuit c;
  const NodeId no = c.node("vddo");
  const NodeId in = c.node("in");
  auto& vo = c.add<VoltageSource>("vo", no, kGround, 1.2);
  c.add<VoltageSource>("vin", in, kGround, 0.8);
  buildSstvs(c, "x", in, c.node("out"), no, {});
  Simulator sim(c);
  const auto x = sim.solveOp();
  EXPECT_LT(std::fabs(x[vo.branchIndex()]), 20e-9);
}

TEST(Sstvs, WorstCaseSequenceDegradesRisingDelay) {
  // The paper: rising delay depends on input history because ctrl may
  // not be fully charged at the falling input edge. A fast toggle
  // sequence must not beat the fully-conditioned first edge.
  HarnessConfig cfg;
  cfg.kind = ShifterKind::Sstvs;
  cfg.vddi = 0.8;
  cfg.vddo = 1.2;
  const ShifterMetrics canonical = measureShifter(cfg);
  const ShifterMetrics worst = measureShifterWorstCase(cfg);
  EXPECT_GE(worst.delay_rise, canonical.delay_rise * 0.999);
  EXPECT_TRUE(worst.functional);
}

TEST(Sstvs, MosCapSizeControlsCtrlRetention) {
  // Shrinking MC must reduce the retained ctrl voltage after a falling
  // input edge (DESIGN.md ablation rationale).
  auto retained = [](MosSize mc) {
    HarnessConfig cfg;
    cfg.kind = ShifterKind::Sstvs;
    cfg.vddi = 0.8;
    cfg.vddo = 1.2;
    cfg.bits = {1, 0};
    cfg.sstvs.mc = mc;
    ShifterTestbench tb(cfg);
    tb.measure();
    const Signal ctrl = tb.lastRun().node("xdut.ctrl");
    return interpLinear(ctrl.time, ctrl.value, 1.9e-9);
  };
  const double big = retained(MosSize{700e-9, 250e-9});
  const double small = retained(MosSize{200e-9, 100e-9});
  EXPECT_GT(big, small);
}

}  // namespace
}  // namespace vls
