// Tests for the related-work comparison cells ([13] Puri, [9]-style
// bootstrap), including the documented weaknesses the SS-TVS paper
// builds its case on.
#include "cells/related_work.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/shifter_harness.hpp"
#include "devices/sources.hpp"
#include "sim/simulator.hpp"

namespace vls {
namespace {

TEST(SsvsPuri, UpShiftsDcBothLevels) {
  for (int bit : {0, 1}) {
    Circuit c;
    const NodeId no = c.node("vddo");
    c.add<VoltageSource>("vo", no, kGround, 1.2);
    c.add<VoltageSource>("vin", c.node("in"), kGround, bit ? 0.8 : 0.0);
    buildSsvsPuri(c, "x", c.node("in"), c.node("out"), no, {});
    Simulator sim(c);
    const auto x = sim.solveOp();
    const double expect = bit ? 1.2 : 0.0;  // two inverters: non-inverting
    EXPECT_NEAR(x[*c.findNode("out")], expect, 0.05) << "bit " << bit;
  }
}

TEST(SsvsPuri, LeakageGrowsWithRailGap) {
  // [13]'s documented limitation: "suffers from higher leakage currents
  // when the difference in voltage levels of the output supply and the
  // input signal is more than a threshold voltage."
  auto leak = [](double vddi, double vddo) {
    Circuit c;
    const NodeId no = c.node("vddo");
    auto& vo = c.add<VoltageSource>("vo", no, kGround, vddo);
    c.add<VoltageSource>("vin", c.node("in"), kGround, vddi);
    buildSsvsPuri(c, "x", c.node("in"), c.node("out"), no, {});
    Simulator sim(c);
    return std::fabs(sim.solveOp()[vo.branchIndex()]);
  };
  const double small_gap = leak(1.0, 1.2);   // gap 0.2 V < VT
  const double big_gap = leak(0.8, 1.4);     // gap 0.6 V > VT
  EXPECT_GT(big_gap, 10.0 * small_gap);
}

TEST(SsvsPuri, ReducedInternalSwing) {
  Circuit c;
  const NodeId no = c.node("vddo");
  c.add<VoltageSource>("vo", no, kGround, 1.2);
  c.add<VoltageSource>("vin", c.node("in"), kGround, 0.0);
  const SsvsPuriHandles h = buildSsvsPuri(c, "x", c.node("in"), c.node("out"), no, {});
  Simulator sim(c);
  const auto x = sim.solveOp();
  // in=0 -> in_b high, but only up to the dropped rail, below VDDO.
  EXPECT_LT(x[h.in_b], 1.1);
  EXPECT_GT(x[h.in_b], 0.6);
}

TEST(Bootstrap, FunctionalViaHarness) {
  HarnessConfig cfg;
  cfg.kind = ShifterKind::Bootstrap;
  cfg.vddi = 0.8;
  cfg.vddo = 1.2;
  const ShifterMetrics m = measureShifter(cfg);
  EXPECT_TRUE(m.functional);
  EXPECT_GT(m.delay_rise, 0.0);
}

TEST(Bootstrap, BootNodeKicksAboveRailOnRisingInput) {
  HarnessConfig cfg;
  cfg.kind = ShifterKind::Bootstrap;
  cfg.vddi = 0.8;
  cfg.vddo = 1.2;
  cfg.bits = {1, 0, 1};
  ShifterTestbench tb(cfg);
  tb.measure();
  const Signal boot = tb.lastRun().node("xdut.boot");
  double boot_max = 0.0;
  double boot_min = 10.0;
  for (double v : boot.value) {
    boot_max = std::max(boot_max, v);
    boot_min = std::min(boot_min, v);
  }
  // The coupling cap must kick the gate meaningfully both ways around
  // its ~VDDO-VT park level.
  EXPECT_GT(boot_max, 1.0);
  EXPECT_LT(boot_min, 0.6);
}

TEST(Bootstrap, LeaksLikeAnInverterWhenInputHighIsLow) {
  // Bootstrapping buys speed, not leakage: with in = 0.8 at VDDO = 1.2
  // the pull-up gate parks near VDDO - VT and the output stage leaks
  // orders of magnitude more than the SS-TVS.
  HarnessConfig cfg;
  cfg.vddi = 0.8;
  cfg.vddo = 1.2;
  cfg.kind = ShifterKind::Bootstrap;
  const ShifterMetrics boot = measureShifter(cfg);
  cfg.kind = ShifterKind::Sstvs;
  const ShifterMetrics tvs = measureShifter(cfg);
  EXPECT_GT(boot.leakage_low, 20.0 * tvs.leakage_low);
}

TEST(Harness, NonInvertingPolarityHandled) {
  HarnessConfig cfg;
  cfg.kind = ShifterKind::SsvsPuri;
  cfg.vddi = 0.8;
  cfg.vddo = 1.2;
  const ShifterMetrics m = measureShifter(cfg);
  EXPECT_TRUE(m.functional);
  EXPECT_GT(m.delay_rise, 0.0);
  EXPECT_GT(m.delay_fall, 0.0);
  EXPECT_FALSE(shifterKindInverting(ShifterKind::SsvsPuri));
  EXPECT_TRUE(shifterKindInverting(ShifterKind::Sstvs));
}

}  // namespace
}  // namespace vls
