// Shared implementation of the paper's Monte-Carlo tables (3 and 4).
#pragma once

#include <iostream>

#include "analysis/monte_carlo.hpp"
#include "bench_util.hpp"

namespace vls::bench {

inline int runMcTable(const char* name, double vddi, double vddo, int samples, uint64_t seed) {
  std::cout << name << ": VDDI=" << vddi << " -> VDDO=" << vddo << ", " << samples
            << " Monte-Carlo samples (paper: 1000; use --samples=1000), T=27C\n"
            << "sigma(W)=sigma(L)=3.34% of 90nm, sigma(VT)=3.34% of nominal, per device\n";

  HarnessConfig h;
  h.vddi = vddi;
  h.vddo = vddo;
  MonteCarloConfig mc;
  mc.samples = samples;
  mc.seed = seed;

  h.kind = ShifterKind::Sstvs;
  const MonteCarloResult tvs = runMonteCarlo(h, mc);
  h.kind = ShifterKind::CombinedVs;
  const MonteCarloResult comb = runMonteCarlo(h, mc);

  Table t({"Performance Parameter", "SS-TVS mu", "SS-TVS sigma", "Combined mu",
           "Combined sigma"});
  auto row = [&](const char* label, Summary a, Summary b, double unit, int prec) {
    t.addRow({label, Table::fmtScaled(a.mean, unit, prec), Table::fmtScaled(a.stddev, unit, prec),
              Table::fmtScaled(b.mean, unit, prec), Table::fmtScaled(b.stddev, unit, prec)});
  };
  row("Delay Rise (ps)", tvs.delayRise(), comb.delayRise(), 1e-12, 1);
  row("Delay Fall (ps)", tvs.delayFall(), comb.delayFall(), 1e-12, 1);
  row("Power Rise (uW)", tvs.powerRise(), comb.powerRise(), 1e-6, 2);
  row("Power Fall (uW)", tvs.powerFall(), comb.powerFall(), 1e-6, 2);
  row("Leakage Current High (nA)", tvs.leakageHigh(), comb.leakageHigh(), 1e-9, 3);
  row("Leakage Current Low (nA)", tvs.leakageLow(), comb.leakageLow(), 1e-9, 3);
  t.print(std::cout);

  auto yield = [](const MonteCarloResult& r) {
    return r.samples - r.functional_failures - r.simulation_errors;
  };
  std::cout << "\nFunctional yield: SS-TVS " << yield(tvs) << "/" << tvs.samples << " ("
            << tvs.functional_failures << " non-functional, " << tvs.simulation_errors
            << " sim errors), Combined " << yield(comb) << "/" << comb.samples << " ("
            << comb.functional_failures << " non-functional, " << comb.simulation_errors
            << " sim errors)\n(paper: SS-TVS converted correctly in ALL samples)\n";
  auto verdict = [](double a, double b) { return a < b ? "SS-TVS tighter" : "Combined tighter"; };
  std::cout << "Sigma comparison per metric (paper: SS-TVS tighter everywhere):\n"
            << "  delay rise:   " << verdict(tvs.delayRise().stddev, comb.delayRise().stddev)
            << "\n  delay fall:   " << verdict(tvs.delayFall().stddev, comb.delayFall().stddev)
            << "\n  leakage high: " << verdict(tvs.leakageHigh().stddev, comb.leakageHigh().stddev)
            << "\n  leakage low:  " << verdict(tvs.leakageLow().stddev, comb.leakageLow().stddev)
            << "\n(see EXPERIMENTS.md: in our reconstruction the H2L rising path runs\n"
               " through the variance-heavy ctrl-gated M1, so that one sigma exceeds\n"
               " the baseline's plain-inverter path)\n";
  return tvs.functional_failures == 0 && tvs.simulation_errors == 0 ? 0 : 1;
}

}  // namespace vls::bench
