// Extension bench: deterministic process-corner sign-off of the SS-TVS
// (FF/SS/FS/SF with paired temperature and +-5% supply derating) in
// both shifting directions — the worst-case complement to the paper's
// Monte-Carlo tables.
#include <iostream>

#include "analysis/corners.hpp"
#include "bench_util.hpp"

int main() {
  using namespace vls;
  using namespace vls::bench;
  std::cout << "bench_corners: SS-TVS across process corners (3-sigma VT skew,\n"
               "+-5% W/L, paired temperature and supply derating)\n";

  bool all_ok = true;
  for (auto [vddi, vddo] : {std::pair{0.8, 1.2}, std::pair{1.2, 0.8}}) {
    std::cout << "\n--- VDDI=" << vddi << " V -> VDDO=" << vddo << " V ---\n";
    HarnessConfig base;
    base.kind = ShifterKind::Sstvs;
    base.vddi = vddi;
    base.vddo = vddo;
    const auto results = runCorners(base, standardCorners());
    Table t({"Corner", "T (C)", "supplies", "rise (ps)", "fall (ps)", "leak high (nA)",
             "leak low (nA)", "functional"});
    for (const auto& r : results) {
      t.addRow({r.corner.name, Table::fmt(r.corner.temperature_c, 3),
                Table::fmt(r.corner.supply_scale, 3),
                Table::fmtScaled(r.metrics.delay_rise, 1e-12, 1),
                Table::fmtScaled(r.metrics.delay_fall, 1e-12, 1),
                Table::fmtScaled(r.metrics.leakage_high, 1e-9, 3),
                Table::fmtScaled(r.metrics.leakage_low, 1e-9, 3),
                r.metrics.functional ? "yes" : "NO"});
      all_ok = all_ok && r.metrics.functional;
    }
    t.print(std::cout);
  }
  std::cout << (all_ok ? "\nPASS: functional at every corner in both directions\n"
                       : "\nFAIL: at least one corner broke\n");
  return all_ok ? 0 : 1;
}
