// Table 4 of the paper: process-variation Monte-Carlo for high -> low
// shifting (1.2 -> 0.8 V) at 27 C.
#include "bench_mc_common.hpp"

int main(int argc, char** argv) {
  using namespace vls::bench;
  const Flags flags(argc, argv);
  const int samples = flags.getInt("samples", 150);
  return runMcTable("bench_table4_mc_high_to_low", 1.2, 0.8, samples, 20080311);
}
