// Model-card characterization: the figures of merit of our 90 nm-class
// EKV cards (Ion, Ioff, subthreshold swing, DIBL, VT) against the
// targets stated in the paper and typical published PTM 90 nm values.
// Every other experiment's absolute numbers rest on this table.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "devices/model_library.hpp"
#include "devices/mosfet.hpp"

int main() {
  using namespace vls;
  using namespace vls::bench;
  std::cout << "bench_model_cards: EKV 90nm card figures of merit at 27C\n"
               "(W = 1um, L = 0.1um; Ion at |VGS|=|VDS|=1.2V; Ioff at VGS=0)\n\n";

  Table t({"Card", "VT0 (V)", "Ion (uA/um)", "Ioff@1.2V (nA/um)", "SS (mV/dec)",
           "DIBL (mV/V)", "Ion/Ioff"});
  for (const char* name : {"nmos", "nmos_hvt", "nmos_lvt", "pmos", "pmos_hvt"}) {
    const MosModelRef card = modelByName(name);
    MosGeometry g;
    g.w = 1e-6;
    g.l = 100e-9;
    const MosOperating op = resolveOperating(*card, g, 300.15);

    const double ion = mosCoreCurrent(*card, op, 1.2, 1.2, 0.0);
    const double ioff = mosCoreCurrent(*card, op, 0.0, 1.2, 0.0);
    // Subthreshold swing from two deep-subthreshold points.
    const double vg_lo = card->vt0 - 0.25;
    const double i1 = mosCoreCurrent(*card, op, vg_lo, 1.2, 0.0);
    const double i2 = mosCoreCurrent(*card, op, vg_lo + 0.05, 1.2, 0.0);
    const double ss = 0.05 / std::log10(i2 / i1) * 1e3;
    // DIBL: effective VT shift between VDS=0.1 and 1.2 (from Ioff ratio).
    const double ioff_lo = mosCoreCurrent(*card, op, 0.0, 0.1, 0.0);
    const double dibl = std::log10(ioff / ioff_lo) * (ss / 1e3) / (1.2 - 0.1) * 1e3;

    t.addRow({name, Table::fmt(card->vt0, 3), Table::fmtScaled(ion, 1e-6, 0),
              Table::fmtScaled(ioff, 1e-9, 2), Table::fmt(ss, 3), Table::fmt(dibl, 3),
              Table::fmt(ion / ioff, 3)});
  }
  t.print(std::cout);
  std::cout <<
      "\nPaper-stated targets: VT = 0.39/0.49/0.19 V (NMOS), -0.39/-0.44 V (PMOS).\n"
      "90 nm-class expectations: Ion ~ 300-700 uA/um (N), SS ~ 75-100 mV/dec,\n"
      "DIBL ~ 50-120 mV/V, Ion/Ioff ~ 1e4-1e6. See DESIGN.md §4 for why these\n"
      "cards were calibrated slightly less leaky than published PTM: the paper's\n"
      "cross-cell leakage RATIOS, not absolute Ioff, carry its claims.\n";
  return 0;
}
