// Section 4 range claim: the SS-TVS converts correctly for every
// VDDI/VDDO combination in [0.8, 1.4] V, at 27/60/90 C. This bench runs
// the grid at all three temperatures and reports the functional yield
// plus worst-case delays per temperature.
#include <iostream>

#include "analysis/sweep.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace vls;
  using namespace vls::bench;
  const Flags flags(argc, argv);
  const double step = flags.getDouble("step", 0.15);

  std::cout << "bench_functional_range: SS-TVS functionality over VDDI x VDDO in\n"
               "[0.8, 1.4] V at 27/60/90 C, grid step " << step << " V\n";

  Table t({"T (C)", "points", "functional", "max rise delay (ps)", "max fall delay (ps)",
           "max leakage (nA)"});
  bool all_ok = true;
  for (double temp : {27.0, 60.0, 90.0}) {
    HarnessConfig base;
    base.kind = ShifterKind::Sstvs;
    base.temperature_c = temp;
    Sweep2dConfig cfg;
    cfg.v_min = 0.8;
    cfg.v_max = 1.4;
    cfg.step = step;
    const Sweep2dResult r = sweepSupplies(base, cfg);
    double max_dr = 0.0;
    double max_df = 0.0;
    double max_leak = 0.0;
    for (const auto& p : r.points) {
      max_dr = std::max(max_dr, p.metrics.delay_rise);
      max_df = std::max(max_df, p.metrics.delay_fall);
      max_leak = std::max({max_leak, p.metrics.leakage_high, p.metrics.leakage_low});
    }
    if (r.functionalCount() != r.points.size()) all_ok = false;
    t.addRow({Table::fmt(temp, 3), std::to_string(r.points.size()),
              std::to_string(r.functionalCount()), Table::fmtScaled(max_dr, 1e-12, 1),
              Table::fmtScaled(max_df, 1e-12, 1), Table::fmtScaled(max_leak, 1e-9, 2)});
  }
  t.print(std::cout);
  std::cout << (all_ok ? "PASS: all grid points functional at all temperatures\n"
                       : "FAIL: some grid points not functional\n");
  return all_ok ? 0 : 1;
}
