// Figure 9 of the paper: falling delay of the SS-TVS over the same
// VDDI x VDDO grid as Figure 8.
#include "bench_sweep_common.hpp"

int main(int argc, char** argv) {
  using namespace vls::bench;
  return runDelaySweep("bench_fig9_falling_delay_sweep", /*rising=*/false, Flags(argc, argv));
}
