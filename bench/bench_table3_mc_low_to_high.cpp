// Table 3 of the paper: process-variation Monte-Carlo for low -> high
// shifting (0.8 -> 1.2 V) at 27 C, mean and standard deviation of all
// six metrics for the SS-TVS and the combined VS.
#include "bench_mc_common.hpp"

int main(int argc, char** argv) {
  using namespace vls::bench;
  const Flags flags(argc, argv);
  const int samples = flags.getInt("samples", 150);
  return runMcTable("bench_table3_mc_low_to_high", 0.8, 1.2, samples, 20080310);
}
