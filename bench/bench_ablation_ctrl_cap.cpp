// Ablation of the ctrl storage capacitor MC (paper: "The node
// capacitance of ctrl ... is selected to be large enough to allow the
// discharge of node2"). Sweeps the MOS-cap size and reports rising
// delay, worst-case rising delay (fast input history), and retention.
#include <iostream>

#include "bench_util.hpp"
#include "numeric/interpolation.hpp"

int main() {
  using namespace vls;
  using namespace vls::bench;
  std::cout << "bench_ablation_ctrl_cap: SS-TVS ctrl storage (MC) size ablation\n";

  const MosSize sizes[] = {
      {200e-9, 100e-9}, {350e-9, 150e-9}, {500e-9, 200e-9}, {700e-9, 250e-9}, {1000e-9, 300e-9}};

  Table t({"MC W x L (nm)", "~cap (fF)", "rise (ps) canonical", "rise (ps) worst-seq",
           "ctrl retained (V)", "functional"});
  for (const MosSize& s : sizes) {
    HarnessConfig cfg;
    cfg.kind = ShifterKind::Sstvs;
    cfg.vddi = 0.8;
    cfg.vddo = 1.2;
    cfg.sstvs.mc = s;
    const ShifterMetrics canonical = measureShifter(cfg);
    const ShifterMetrics worst = measureShifterWorstCase(cfg);

    // ctrl retention after the first falling edge.
    HarnessConfig probe = cfg;
    probe.bits = {1, 0};
    ShifterTestbench tb(probe);
    tb.measure();
    const Signal ctrl = tb.lastRun().node("xdut.ctrl");
    const double retained = interpLinear(ctrl.time, ctrl.value, 1.9e-9);

    const double cap_f = nmos90()->cox() * s.w * s.l;
    t.addRow({Table::fmtScaled(s.w, 1e-9, 0) + " x " + Table::fmtScaled(s.l, 1e-9, 0),
              Table::fmtScaled(cap_f, 1e-15, 2), Table::fmtScaled(canonical.delay_rise, 1e-12, 1),
              Table::fmtScaled(worst.delay_rise, 1e-12, 1), Table::fmt(retained, 3),
              (canonical.functional && worst.functional) ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "Expected: small MC -> ctrl collapses while M2 turns off -> slower or\n"
               "failing rising edge under adversarial input history; larger MC costs\n"
               "area and slows ctrl recharging.\n";
  return 0;
}
