// Simulator performance microbenchmarks (google-benchmark): sparse LU,
// MOSFET model evaluation, full Newton transient throughput on the
// SS-TVS testbench, and the characterization harness end to end.
//
// Before the google-benchmark suite runs, main() measures the hot
// paths this engine optimizes — full-vs-numeric-refactor LU, assembly
// replay, the threads x ensemble-width Monte-Carlo scaling matrix,
// million-sample streaming statistics, and QMC variance reduction —
// and writes the results to BENCH_perf.json (machine-readable perf
// trajectory).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "analysis/fabric_bootstrap.hpp"
#include "analysis/monte_carlo.hpp"
#include "analysis/shifter_harness.hpp"
#include "base/parallel.hpp"
#include "cells/fabric.hpp"
#include "cells/sstvs.hpp"
#include "devices/model_library.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "io/json_writer.hpp"
#include "numeric/interpolation.hpp"
#include "numeric/lu_bbd.hpp"
#include "numeric/lu_sparse.hpp"
#include "numeric/rng.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace vls;

SparseMatrix circuitStyleMatrix(int n, uint64_t seed) {
  Rng rng(seed);
  SparseMatrix m(n);
  for (int i = 0; i < n; ++i) {
    m.add(i, i, 4.0 + rng.uniform());
    if (i > 0) {
      m.add(i, i - 1, -1.0);
      m.add(i - 1, i, -1.0);
    }
    // A few long-range couplings, circuit-style.
    const int j = static_cast<int>(rng.below(n));
    m.add(i, j, 0.1);
  }
  return m;
}

/// Rewrite the off-diagonal values in place (same pattern), like a
/// Newton iteration refreshing the MNA values.
void perturbValues(SparseMatrix& m, Rng& rng) {
  const auto& coords = m.entries();
  for (size_t h = 0; h < coords.size(); ++h) {
    if (coords[h].row == coords[h].col) {
      m.setAt(h, 4.0 + rng.uniform());
    } else {
      m.setAt(h, m.at(h) * (1.0 + 0.01 * (rng.uniform() - 0.5)));
    }
  }
}

void BM_SparseLuFactorSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SparseMatrix m = circuitStyleMatrix(n, 42);
  std::vector<double> b(n, 1.0);
  for (auto _ : state) {
    SparseLu lu(m);
    benchmark::DoNotOptimize(lu.solve(b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SparseLuFactorSolve)->Arg(16)->Arg(64)->Arg(256);

void BM_SparseLuRefactorSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SparseMatrix m = circuitStyleMatrix(n, 42);
  std::vector<double> b(n, 1.0);
  SparseLu lu(m);  // symbolic phase amortized outside the loop
  for (auto _ : state) {
    lu.refactor(m);
    benchmark::DoNotOptimize(lu.solve(b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SparseLuRefactorSolve)->Arg(16)->Arg(64)->Arg(256);

void BM_MosfetCoreEval(benchmark::State& state) {
  const MosModelCard& card = *nmos90();
  MosGeometry g;
  const MosOperating op = resolveOperating(card, g, 300.15);
  double vg = 0.8;
  for (auto _ : state) {
    using D3 = Dual<3>;
    const D3 i = mosCoreCurrent(card, op, D3::seed(vg, 0), D3::seed(1.2, 1), D3::seed(0.0, 2));
    benchmark::DoNotOptimize(i);
    vg = vg == 0.8 ? 0.3 : 0.8;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MosfetCoreEval);

void BM_SstvsOperatingPoint(benchmark::State& state) {
  Circuit c;
  const NodeId vddo = c.node("vddo");
  const NodeId in = c.node("in");
  c.add<VoltageSource>("vo", vddo, kGround, 1.2);
  c.add<VoltageSource>("vin", in, kGround, 0.8);
  buildSstvs(c, "x", in, c.node("out"), vddo, {});
  Simulator sim(c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.solveOp());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SstvsOperatingPoint);

void BM_SstvsTransientNanosecond(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Circuit c;
    const NodeId vddo = c.node("vddo");
    const NodeId in = c.node("in");
    c.add<VoltageSource>("vo", vddo, kGround, 1.2);
    PulseSpec p;
    p.v1 = 0.8;
    p.v2 = 0.0;
    p.delay = 0.2e-9;
    p.rise = p.fall = 20e-12;
    p.width = 0.4e-9;
    c.add<VoltageSource>("vin", in, kGround, Waveform::pulse(p));
    buildSstvs(c, "x", in, c.node("out"), vddo, {});
    c.add<Capacitor>("cl", c.node("out"), kGround, 1e-15);
    Simulator sim(c);
    state.ResumeTiming();
    benchmark::DoNotOptimize(sim.transient(1e-9, 50e-12));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SstvsTransientNanosecond);

void BM_FullCharacterization(benchmark::State& state) {
  for (auto _ : state) {
    HarnessConfig cfg;
    cfg.kind = ShifterKind::Sstvs;
    benchmark::DoNotOptimize(measureShifter(cfg));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullCharacterization)->Unit(benchmark::kMillisecond);

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Full-vs-refactor LU on a Newton-style repeated-factorization
/// workload: same pattern, values refreshed every iteration.
JsonValue measureLuReuse(int n, int reps) {
  SparseMatrix m = circuitStyleMatrix(n, 42);
  std::vector<double> b(static_cast<size_t>(n), 1.0);
  Rng rng(7);

  SparseLu lu(m);
  const size_t nnz = lu.factorNonZeros();

  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) {
    perturbValues(m, rng);
    SparseLu fresh(m);
    benchmark::DoNotOptimize(fresh.solve(b));
  }
  const double full_sec = secondsSince(t0);

  rng = Rng(7);
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) {
    perturbValues(m, rng);
    lu.refactor(m);
    benchmark::DoNotOptimize(lu.solve(b));
  }
  const double refactor_sec = secondsSince(t0);

  JsonValue::Object o;
  o["n"] = n;
  o["reps"] = reps;
  o["factor_nnz"] = nnz;
  o["full_us_per_iter"] = 1e6 * full_sec / reps;
  o["refactor_us_per_iter"] = 1e6 * refactor_sec / reps;
  o["speedup"] = refactor_sec > 0.0 ? full_sec / refactor_sec : 0.0;
  return JsonValue(std::move(o));
}

/// One full SS-TVS characterization: Newton iteration count and the
/// symbolic/numeric factorization split seen by the transient engine.
JsonValue measureNewtonWorkload() {
  HarnessConfig cfg;
  cfg.kind = ShifterKind::Sstvs;
  ShifterTestbench tb(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  const ShifterMetrics m = tb.measure();
  const double sec = secondsSince(t0);
  JsonValue::Object o;
  o["characterization_ms"] = 1e3 * sec;
  o["newton_iterations"] = tb.lastRun().total_newton_iterations;
  o["functional"] = m.functional;
  return JsonValue(std::move(o));
}

/// Hashed vs tape-replay vs bypass assembly on the SS-TVS
/// characterization netlist, linearized at the operating point in a
/// transient context (all charge-storage stamps active).
JsonValue measureAssembly(int reps) {
  Circuit c;
  const NodeId vddo = c.node("vddo");
  const NodeId in = c.node("in");
  c.add<VoltageSource>("vo", vddo, kGround, 1.2);
  PulseSpec p;
  p.v1 = 0.8;
  p.v2 = 0.0;
  p.delay = 0.2e-9;
  p.rise = p.fall = 20e-12;
  p.width = 0.4e-9;
  c.add<VoltageSource>("vin", in, kGround, Waveform::pulse(p));
  buildSstvs(c, "x", in, c.node("out"), vddo, {});
  c.add<Capacitor>("cl", c.node("out"), kGround, 1e-15);

  Simulator sim(c);
  const std::vector<double> x = sim.solveOp();
  const size_t branches = c.assignBranchIndices();
  EvalContext ctx = sim.contextFor(x, 0.1e-9);
  ctx.method = IntegrationMethod::Trapezoidal;
  ctx.dt = 1e-12;
  for (const auto& dev : c.devices()) dev->startTransient(ctx);

  MnaSystem sys(c.nodeCount(), branches);

  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) assembleDirect(sys, c, ctx);
  const double hashed_sec = secondsSince(t0);
  const SparseMatrix reference = sys.matrix();
  const std::vector<double> reference_rhs = sys.rhs();

  Assembler assembler;
  assembler.assemble(sys, c, ctx);  // recording pass (not timed)
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) assembler.assemble(sys, c, ctx);
  const double tape_sec = secondsSince(t0);

  // Replayed assembly must be bit-identical to the hashed reference.
  bool matches = sys.rhs() == reference_rhs && sys.matrix().entries().size() == reference.entries().size();
  if (matches) {
    for (size_t h = 0; h < reference.entries().size(); ++h) {
      if (sys.matrix().at(h) != reference.at(h)) {
        matches = false;
        break;
      }
    }
  }

  AssemblyOptions bypass;
  bypass.enable_bypass = true;
  bypass.allow_bypass_now = true;
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) assembler.assemble(sys, c, ctx, bypass);
  const double bypass_sec = secondsSince(t0);

  // --- Stamping-only comparison --------------------------------------
  // The full-assembly numbers above are dominated by model evaluation
  // on a netlist this small. To isolate what the tape actually
  // replaces, apply the identical scalar write sequence through
  // coordinate hashing (the direct path's per-write work) vs through
  // the recorded handles.
  AssemblyTape tape;
  tape.beginRecording(&sys, 0);
  {
    Stamper rec(sys);
    rec.startRecording(tape);
    sys.clear();
    for (const auto& dev : c.devices()) {
      tape.beginDevice();
      dev->stamp(rec, ctx);
      for (size_t t = 0; t < dev->terminalCount(); ++t) {
        tape.recordTerminalVoltage(ctx.v(dev->terminalNode(t)));
      }
      tape.endDevice();
    }
    tape.finishRecording(sys.matrix(), sys.numNodes());
  }
  struct Write {
    bool matrix;      // false = RHS accumulate
    size_t row, col;  // col unused for RHS writes
    double scale;     // sign applied to the op scalar (or to 1.0)
    uint32_t op;      // kNone = constant write (voltage-branch +/-1)
  };
  std::vector<Write> writes;
  const auto& coords = sys.matrix().entries();
  auto add_m = [&](uint32_t h, double scale, uint32_t op) {
    if (h != TapeOp::kNone) writes.push_back({true, coords[h].row, coords[h].col, scale, op});
  };
  auto add_r = [&](uint32_t r, double scale, uint32_t op) {
    if (r != TapeOp::kNone) writes.push_back({false, r, 0, scale, op});
  };
  for (uint32_t i = 0; i < tape.opCount(); ++i) {
    const TapeOp& op = tape.op(i);
    switch (op.kind) {
      case TapeOp::Kind::Conductance:
        add_m(op.m[0], 1.0, i);
        add_m(op.m[1], 1.0, i);
        add_m(op.m[2], -1.0, i);
        add_m(op.m[3], -1.0, i);
        break;
      case TapeOp::Kind::CurrentSource:
        add_r(op.r[0], -1.0, i);
        add_r(op.r[1], 1.0, i);
        break;
      case TapeOp::Kind::Transconductance:
        add_m(op.m[0], 1.0, i);
        add_m(op.m[1], -1.0, i);
        add_m(op.m[2], -1.0, i);
        add_m(op.m[3], 1.0, i);
        break;
      case TapeOp::Kind::VoltageBranch:
        add_m(op.m[0], 1.0, TapeOp::kNone);
        add_m(op.m[1], -1.0, TapeOp::kNone);
        add_m(op.m[2], 1.0, TapeOp::kNone);
        add_m(op.m[3], -1.0, TapeOp::kNone);
        add_r(op.r[0], 1.0, i);
        break;
      case TapeOp::Kind::Matrix:
        add_m(op.m[0], 1.0, i);
        break;
      case TapeOp::Kind::Rhs:
        add_r(op.r[0], 1.0, i);
        break;
    }
  }

  const int stamp_reps = 20 * reps;
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < stamp_reps; ++i) {
    sys.clear();
    for (const Write& w : writes) {
      const double v = w.scale * (w.op == TapeOp::kNone ? 1.0 : tape.opValue(w.op));
      if (w.matrix) {
        sys.matrix().add(w.row, w.col, v);
      } else {
        sys.rhs()[w.row] += v;
      }
    }
    for (size_t n = 0; n < sys.numNodes(); ++n) sys.matrix().add(n, n, ctx.gmin);
  }
  const double stamp_hashed_sec = secondsSince(t0);

  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < stamp_reps; ++i) {
    sys.clear();
    for (size_t d = 0; d < tape.deviceCount(); ++d) {
      tape.replayStored(d, sys.matrix(), sys.rhs());
    }
    for (const size_t h : tape.gminHandles()) sys.matrix().addAt(h, ctx.gmin);
  }
  const double stamp_tape_sec = secondsSince(t0);

  JsonValue::Object o;
  o["unknowns"] = sys.size();
  o["devices"] = c.devices().size();
  o["reps"] = reps;
  o["hashed_us_per_iter"] = 1e6 * hashed_sec / reps;
  o["tape_us_per_iter"] = 1e6 * tape_sec / reps;
  o["bypass_us_per_iter"] = 1e6 * bypass_sec / reps;
  o["tape_speedup"] = tape_sec > 0.0 ? hashed_sec / tape_sec : 0.0;
  o["bypass_speedup"] = bypass_sec > 0.0 ? hashed_sec / bypass_sec : 0.0;
  o["stamp_writes"] = writes.size();
  o["stamp_hashed_us_per_iter"] = 1e6 * stamp_hashed_sec / stamp_reps;
  o["stamp_tape_us_per_iter"] = 1e6 * stamp_tape_sec / stamp_reps;
  o["stamp_tape_speedup"] = stamp_tape_sec > 0.0 ? stamp_hashed_sec / stamp_tape_sec : 0.0;
  o["matches_hashed"] = matches;
  return JsonValue(std::move(o));
}

/// The same hashed-vs-tape comparison at fabric scale (thousands of
/// devices). On the tiny characterization netlist above, fixed
/// per-dispatch overhead can eat the replay win (tape_speedup hovers
/// near 1); here the zero-hash inner loop amortizes and the crossover
/// is decisively past. Also isolates the cost of storing replayed
/// scalars back into the tape — paid only when bypass is enabled.
JsonValue measureAssemblyLarge(int islands, int reps) {
  FabricSpec spec;
  spec.islands = islands;
  spec.input_pulse.delay = 0.2e-9;
  Circuit c;
  buildFabric(c, spec);

  SimOptions base;
  base.nodeset = std::make_shared<const std::vector<double>>(fabricDcGuess(c, spec));
  base.recovery.ptran_max_steps = 2000;
  base.recovery.ptran_grow = 2.0;
  base.lu_ordering = LuOrdering::MinDegree;
  Simulator sim(c, base);
  const std::vector<double> x = sim.solveOp();
  const size_t branches = c.assignBranchIndices();
  EvalContext ctx = sim.contextFor(x, 0.1e-9);
  ctx.method = IntegrationMethod::Trapezoidal;
  ctx.dt = 1e-12;
  for (const auto& dev : c.devices()) dev->startTransient(ctx);

  MnaSystem sys(c.nodeCount(), branches);
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) assembleDirect(sys, c, ctx);
  const double hashed_sec = secondsSince(t0);

  Assembler assembler;
  assembler.assemble(sys, c, ctx);  // recording pass (not timed)
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) assembler.assemble(sys, c, ctx);
  const double tape_sec = secondsSince(t0);

  // Replay with value stores on: what a bypass-enabled solve pays on
  // its forced full evaluations (allow_bypass_now stays false, so every
  // device evaluates and every replayed scalar is written back).
  AssemblyOptions store;
  store.enable_bypass = true;
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) assembler.assemble(sys, c, ctx, store);
  const double tape_store_sec = secondsSince(t0);

  JsonValue::Object o;
  o["islands"] = islands;
  o["unknowns"] = sys.size();
  o["devices"] = c.devices().size();
  o["reps"] = reps;
  o["hashed_us_per_iter"] = 1e6 * hashed_sec / reps;
  o["tape_us_per_iter"] = 1e6 * tape_sec / reps;
  o["tape_store_us_per_iter"] = 1e6 * tape_store_sec / reps;
  o["tape_speedup"] = tape_sec > 0.0 ? hashed_sec / tape_sec : 0.0;
  o["store_skip_speedup"] = tape_sec > 0.0 ? tape_store_sec / tape_sec : 0.0;
  return JsonValue(std::move(o));
}

bool metricsBitIdentical(const MonteCarloResult& a, const MonteCarloResult& b) {
  return a.delay_rise == b.delay_rise && a.delay_fall == b.delay_fall &&
         a.power_rise == b.power_rise && a.power_fall == b.power_fall &&
         a.leakage_high == b.leakage_high && a.leakage_low == b.leakage_low &&
         a.failed_samples == b.failed_samples;
}

/// Threads x ensemble-width Monte-Carlo scaling matrix on the real
/// harness. Always emitted, even on a single-core host: the cells then
/// honestly record hardware_concurrency = 1 with speedups at or below
/// 1.0 (pure scheduling overhead), and CI asserts scaling only on
/// runners that have the cores. Each cell pins the worker count through
/// MonteCarloConfig::threads (the same override VLS_THREADS applies
/// pool-wide) and records the auto-chunk the scheduler would pick.
JsonValue measureMonteCarloMatrix(int samples) {
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  MonteCarloConfig mc;
  mc.samples = samples;
  mc.seed = 20080310;

  JsonValue::Object o;
  o["samples"] = samples;
  o["hardware_concurrency"] = static_cast<size_t>(std::thread::hardware_concurrency());
  o["pool_threads"] = parallelThreadCount();
  o["scheduler"] = std::string(parallelSchedulerName());

  const int thread_counts[] = {1, 2, 4};
  const int widths[] = {1, 8};
  double sec_t1_k1 = 0.0;
  double sec_t4_k8 = 0.0;
  MonteCarloResult ref_t1_k1;  // failed ids must match every cell
  bool failed_ids_match = true;
  bool bit_identical_across_threads = true;
  for (const int k : widths) {
    // Per-width thread-invariance reference: lockstep numerics differ
    // slightly from scalar numerics, so metric vectors are compared
    // within a width; failed ids must be identical across everything.
    MonteCarloResult ref_width;
    for (const int t : thread_counts) {
      mc.threads = t;
      mc.ensemble_width = k;
      const size_t items = (static_cast<size_t>(samples) + k - 1) / k;
      const auto t0 = std::chrono::steady_clock::now();
      const MonteCarloResult r = runMonteCarlo(h, mc);
      const double sec = secondsSince(t0);
      JsonValue::Object cell;
      cell["sec"] = sec;
      cell["samples_per_sec"] = sec > 0.0 ? samples / sec : 0.0;
      cell["chunk"] = parallelAutoChunk(items, static_cast<size_t>(t));
      if (t == 1 && k == 1) {
        sec_t1_k1 = sec;
        ref_t1_k1 = r;
      } else {
        cell["speedup_vs_t1_k1"] = sec > 0.0 ? sec_t1_k1 / sec : 0.0;
      }
      if (t == 4 && k == 8) sec_t4_k8 = sec;
      if (t == 1) {
        ref_width = r;
      } else {
        bit_identical_across_threads =
            bit_identical_across_threads && metricsBitIdentical(r, ref_width);
      }
      failed_ids_match = failed_ids_match && r.failedIds() == ref_t1_k1.failedIds();
      o["t" + std::to_string(t) + "_k" + std::to_string(k)] = JsonValue(std::move(cell));
    }
  }
  o["speedup_t4_k8_vs_t1_k1"] = sec_t4_k8 > 0.0 ? sec_t1_k1 / sec_t4_k8 : 0.0;
  o["bit_identical_across_threads"] = bit_identical_across_threads;
  o["failed_ids_match"] = failed_ids_match;
  return JsonValue(std::move(o));
}

void putSummary(JsonValue::Object& o, const char* key, const Summary& s) {
  JsonValue::Object j;
  j["mean"] = s.mean;
  j["stddev"] = s.stddev;
  j["p05"] = s.p05;
  j["median"] = s.median;
  j["p95"] = s.p95;
  o[key] = JsonValue(std::move(j));
}

/// Relative disagreement between an exact and a streaming summary over
/// the statistics the P2/Welford path estimates.
double summaryRelErr(const Summary& exact, const Summary& stream) {
  auto rel = [](double a, double b) {
    const double d = std::fabs(a - b);
    const double m = std::max(std::fabs(a), std::fabs(b));
    return m > 0.0 ? d / m : 0.0;
  };
  double worst = rel(exact.mean, stream.mean);
  worst = std::max(worst, rel(exact.p05, stream.p05));
  worst = std::max(worst, rel(exact.median, stream.median));
  worst = std::max(worst, rel(exact.p95, stream.p95));
  return worst;
}

/// Million-sample streaming Monte-Carlo on the closed-form surrogate
/// evaluator: 10^6 samples summarized through O(1) Welford + P-squared
/// accumulators (a few hundred bytes per metric, no per-sample
/// vectors), compared against a 10^5-sample exact run. Also re-runs the
/// exact sample count in streaming mode to check that failed_samples is
/// bit-identical between the two accumulation paths. Real transients at
/// this count are infeasible (~days at ~25 samples/sec); the surrogate
/// exercises exactly the layers this section measures — sample
/// derivation, scheduling, and statistics.
JsonValue measureStreamingMillion(int exact_samples, int streaming_samples) {
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  MonteCarloConfig mc;
  mc.seed = 20080310;
  mc.evaluator = makeSurrogateEvaluator(h);

  mc.samples = exact_samples;
  mc.streaming = false;
  auto t0 = std::chrono::steady_clock::now();
  const MonteCarloResult exact = runMonteCarlo(h, mc);
  const double exact_sec = secondsSince(t0);

  mc.streaming = true;
  const MonteCarloResult paired = runMonteCarlo(h, mc);

  mc.samples = streaming_samples;
  t0 = std::chrono::steady_clock::now();
  const MonteCarloResult stream = runMonteCarlo(h, mc);
  const double stream_sec = secondsSince(t0);

  double worst = summaryRelErr(exact.delayRise(), stream.delayRise());
  worst = std::max(worst, summaryRelErr(exact.delayFall(), stream.delayFall()));
  worst = std::max(worst, summaryRelErr(exact.powerRise(), stream.powerRise()));
  worst = std::max(worst, summaryRelErr(exact.powerFall(), stream.powerFall()));
  worst = std::max(worst, summaryRelErr(exact.leakageHigh(), stream.leakageHigh()));
  worst = std::max(worst, summaryRelErr(exact.leakageLow(), stream.leakageLow()));

  JsonValue::Object o;
  o["evaluator"] = std::string("surrogate");
  o["threads"] = parallelThreadCount();
  JsonValue::Object e;
  e["samples"] = exact_samples;
  e["sec"] = exact_sec;
  e["samples_per_sec"] = exact_sec > 0.0 ? exact_samples / exact_sec : 0.0;
  e["failed"] = exact.failed_samples.size();
  o["exact"] = JsonValue(std::move(e));
  JsonValue::Object s;
  s["samples"] = streaming_samples;
  s["sec"] = stream_sec;
  s["samples_per_sec"] = stream_sec > 0.0 ? streaming_samples / stream_sec : 0.0;
  s["failed"] = stream.failed_samples.size();
  o["streaming"] = JsonValue(std::move(s));
  putSummary(o, "delay_rise_exact", exact.delayRise());
  putSummary(o, "delay_rise_streaming", stream.delayRise());
  o["max_summary_rel_err"] = worst;
  o["failed_samples_bit_identical"] = paired.failed_samples == exact.failed_samples;
  return JsonValue(std::move(o));
}

/// Quasi-Monte-Carlo variance reduction on the surrogate: the variance
/// of the delay_rise mean estimator across independent replicates
/// (distinct seeds / scramble seeds), pseudo vs Latin hypercube vs
/// scrambled Sobol at a fixed sample count. Ratios > 1 mean the
/// low-discrepancy modes need proportionally fewer samples for the same
/// statistical error.
JsonValue measureQmcVariance(int samples, int replicates) {
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  MonteCarloConfig mc;
  mc.samples = samples;
  mc.streaming = true;
  mc.evaluator = makeSurrogateEvaluator(h);

  JsonValue::Object o;
  o["samples"] = samples;
  o["replicates"] = replicates;
  double var_pseudo = 0.0;
  double var_lhs = 0.0;
  double var_sobol = 0.0;
  for (const SamplingMode mode :
       {SamplingMode::Pseudo, SamplingMode::LatinHypercube, SamplingMode::Sobol}) {
    mc.sampling = mode;
    OnlineStats means;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < replicates; ++r) {
      mc.seed = 20080310 + 977u * static_cast<uint64_t>(r);
      means.add(runMonteCarlo(h, mc).delayRise().mean);
    }
    const double sec = secondsSince(t0);
    JsonValue::Object m;
    m["mean_of_means"] = means.mean();
    m["stddev_of_mean"] = means.stddev();
    m["sec"] = sec;
    o[samplingModeName(mode)] = JsonValue(std::move(m));
    const double var = means.variance();
    if (mode == SamplingMode::Pseudo) var_pseudo = var;
    if (mode == SamplingMode::LatinHypercube) var_lhs = var;
    if (mode == SamplingMode::Sobol) var_sobol = var;
  }
  o["lhs_variance_reduction"] = var_lhs > 0.0 ? var_pseudo / var_lhs : 0.0;
  o["sobol_variance_reduction"] = var_sobol > 0.0 ? var_pseudo / var_sobol : 0.0;
  return JsonValue(std::move(o));
}

/// Scalar vs lockstep-ensemble Monte-Carlo throughput at a fixed seed
/// on a single worker thread: K samples advance through one SoA
/// transient per batch instead of K scalar transients. Also records how
/// closely the ensemble summary statistics track the scalar reference
/// and whether the failed-sample ids are identical.
JsonValue measureEnsembleMonteCarlo(int samples) {
  HarnessConfig h;
  h.kind = ShifterKind::Sstvs;
  // Converged time resolution (same settings as the acceptance test in
  // monte_carlo_test.cpp): the lockstep engine advances on the min-dt
  // of its lanes, so only at converged resolution are scalar and
  // ensemble summary means comparable at the 0.5% level CI asserts.
  h.dt_max = 10e-12;
  h.sim.tran_reltol = 5e-4;
  MonteCarloConfig mc;
  mc.samples = samples;
  mc.seed = 20080310;
  mc.threads = 1;

  JsonValue::Object o;
  o["samples"] = samples;
  o["threads"] = 1;
  double sec_k1 = 0.0;
  double sec_k8 = 0.0;
  MonteCarloResult base;
  for (const int k : {1, 4, 8}) {
    mc.ensemble_width = k;
    const auto t0 = std::chrono::steady_clock::now();
    const MonteCarloResult r = runMonteCarlo(h, mc);
    const double sec = secondsSince(t0);
    JsonValue::Object e;
    e["sec"] = sec;
    e["samples_per_sec"] = sec > 0.0 ? samples / sec : 0.0;
    if (k == 1) {
      sec_k1 = sec;
      base = r;
    } else {
      if (k == 8) sec_k8 = sec;
      e["speedup_vs_scalar"] = sec > 0.0 ? sec_k1 / sec : 0.0;
      e["failed_ids_match"] = r.failedIds() == base.failedIds();
      auto rel = [](double a, double b) {
        const double d = std::fabs(a - b);
        const double m = std::max(std::fabs(a), std::fabs(b));
        return m > 0.0 ? d / m : 0.0;
      };
      double worst = 0.0;
      worst = std::max(worst, rel(r.delayRise().mean, base.delayRise().mean));
      worst = std::max(worst, rel(r.delayFall().mean, base.delayFall().mean));
      worst = std::max(worst, rel(r.powerRise().mean, base.powerRise().mean));
      worst = std::max(worst, rel(r.powerFall().mean, base.powerFall().mean));
      worst = std::max(worst, rel(r.leakageHigh().mean, base.leakageHigh().mean));
      worst = std::max(worst, rel(r.leakageLow().mean, base.leakageLow().mean));
      e["max_mean_rel_err"] = worst;
    }
    o["k" + std::to_string(k)] = JsonValue(std::move(e));
  }
  o["speedup_k8_vs_k1"] = sec_k8 > 0.0 ? sec_k1 / sec_k8 : 0.0;
  return JsonValue(std::move(o));
}

/// One fabric size: a voltage-island chain at the default (paper-sized)
/// island spec. Measures the floorplan-scale solver levers on the same
/// netlist:
///   - fill-reducing ordering in isolation: natural vs minimum-degree
///     factor / refactor / solve on the converged DC Jacobian (the
///     Newton hot path, so ordered_vs_natural_speedup is
///     refactor-based);
///   - the full fabric solve stack (bordered-block-diagonal partition,
///     device bypass, per-block latency) vs the pre-ordering default
///     flat solve (natural order) on a pulse-edge transient
///     (bbd_vs_flat_speedup), plus the MinDegree flat transient
///     alongside (bbd_vs_flat_mindeg_speedup) so the ordering and
///     partitioning contributions stay separable. On a single-core
///     host the latter hovers near 1.0 — the partition's remaining
///     edge is parallel block factorization (threads is recorded) and
///     latency skips on bypass-quiet islands; the fill story is what
///     carries the serial win.
/// The DC bootstrap (prototype growth + tiling, see
/// src/analysis/fabric_bootstrap) is timed separately, and the timed
/// transients warm-start from the converged operating point so they
/// measure transient throughput, not operating-point recovery.
JsonValue measureFabricSize(int islands, double t_stop, double dt_max, int reps) {
  FabricSpec spec;
  spec.islands = islands;
  // Pull the input edge close to t=0: the perf window is the edge
  // propagating through the boundary shifters, not the quiet preamble.
  spec.input_pulse.delay = 0.2e-9;

  Circuit c;
  const FabricHandles fab = buildFabric(c, spec);

  auto t0 = std::chrono::steady_clock::now();
  auto nodeset = std::make_shared<const std::vector<double>>(fabricDcGuess(c, spec));
  const double bootstrap_sec = secondsSince(t0);

  SimOptions base;
  base.nodeset = nodeset;
  // Deep shifter cascades need a patient pseudo-transient rung when the
  // tiled guess lands outside Newton's basin (it does at this scale).
  base.recovery.ptran_max_steps = 2000;
  base.recovery.ptran_grow = 2.0;

  SimOptions amd = base;
  amd.lu_ordering = LuOrdering::MinDegree;
  Simulator op_sim(c, amd);
  t0 = std::chrono::steady_clock::now();
  const std::vector<double> x = op_sim.solveOp();
  const double op_sec = secondsSince(t0);

  JsonValue::Object o;
  o["islands"] = islands;
  o["devices"] = c.devices().size();
  o["unknowns"] = x.size();
  o["bootstrap_sec"] = bootstrap_sec;
  o["op_sec"] = op_sec;

  // --- Ordering comparison on the converged DC Jacobian --------------
  const size_t branches = c.assignBranchIndices();
  const EvalContext ctx = op_sim.contextFor(x, 0.0);
  MnaSystem sys(c.nodeCount(), branches);
  assembleDirect(sys, c, ctx);
  const SparseMatrix& jac = sys.matrix();
  const std::vector<double>& rhs = sys.rhs();

  double factor_sec[2] = {0.0, 0.0};
  double refactor_sec[2] = {0.0, 0.0};
  double solve_sec[2] = {0.0, 0.0};
  size_t fill[2] = {0, 0};
  const LuOrdering orderings[2] = {LuOrdering::Natural, LuOrdering::MinDegree};
  for (int i = 0; i < 2; ++i) {
    SparseLu lu;
    lu.setOrdering(orderings[i]);
    t0 = std::chrono::steady_clock::now();
    lu.factor(jac);
    factor_sec[i] = secondsSince(t0);
    fill[i] = lu.fillCount();
    t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) lu.refactor(jac);
    refactor_sec[i] = secondsSince(t0) / reps;
    t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) benchmark::DoNotOptimize(lu.solve(rhs));
    solve_sec[i] = secondsSince(t0) / reps;
  }
  o["fill_natural"] = fill[0];
  o["fill_mindeg"] = fill[1];
  o["fill_ratio"] = fill[0] > 0 ? static_cast<double>(fill[1]) / fill[0] : 0.0;
  o["factor_natural_ms"] = 1e3 * factor_sec[0];
  o["factor_mindeg_ms"] = 1e3 * factor_sec[1];
  o["refactor_natural_ms"] = 1e3 * refactor_sec[0];
  o["refactor_mindeg_ms"] = 1e3 * refactor_sec[1];
  o["solve_natural_ms"] = 1e3 * solve_sec[0];
  o["solve_mindeg_ms"] = 1e3 * solve_sec[1];
  o["ordered_vs_natural_speedup"] =
      refactor_sec[1] > 0.0 ? refactor_sec[0] / refactor_sec[1] : 0.0;

  // --- Transient: default flat vs ordered flat vs partitioned --------
  // All three runs warm-start from the converged operating point (so
  // the internal transient OP converges in a couple of iterations) and
  // enable the device bypass: identical assembly cost on every side,
  // so the comparison isolates the linear-solve strategy. Bypass also
  // makes quiet islands' stamps bit-identical, which is what arms the
  // BBD per-block latency.
  SimOptions warm = base;
  warm.nodeset = std::make_shared<const std::vector<double>>(x);
  warm.enable_bypass = true;

  Simulator flat_nat(c, warm);
  t0 = std::chrono::steady_clock::now();
  const TransientResult tr_nat = flat_nat.transient(t_stop, dt_max);
  const double tran_flat_sec = secondsSince(t0);

  SimOptions warm_amd = warm;
  warm_amd.lu_ordering = LuOrdering::MinDegree;
  Simulator flat_amd(c, warm_amd);
  t0 = std::chrono::steady_clock::now();
  const TransientResult tr_amd = flat_amd.transient(t_stop, dt_max);
  const double tran_mindeg_sec = secondsSince(t0);

  SimOptions part = warm_amd;
  part.partition = makePartitionSpec(fab);
  // This comparison wants the BBD stack on every size; record what the
  // Auto heuristic would have picked alongside.
  part.partition_use = PartitionUse::ForceBbd;
  {
    SimOptions auto_opt = part;
    auto_opt.partition_use = PartitionUse::Auto;
    o["partition_auto_decision"] = Simulator(c, auto_opt).partitionDecision();
  }
  Simulator bbd(c, part);
  t0 = std::chrono::steady_clock::now();
  const TransientResult tr_bbd = bbd.transient(t_stop, dt_max);
  const double tran_bbd_sec = secondsSince(t0);

  o["t_stop"] = t_stop;
  o["bypass"] = true;
  o["tran_steps"] = tr_bbd.steps();
  o["tran_newton_flat"] = tr_nat.total_newton_iterations;
  o["tran_newton_mindeg"] = tr_amd.total_newton_iterations;
  o["tran_newton_bbd"] = tr_bbd.total_newton_iterations;
  o["tran_flat_natural_sec"] = tran_flat_sec;
  o["tran_flat_mindeg_sec"] = tran_mindeg_sec;
  o["tran_bbd_sec"] = tran_bbd_sec;
  o["bbd_vs_flat_speedup"] = tran_bbd_sec > 0.0 ? tran_flat_sec / tran_bbd_sec : 0.0;
  o["bbd_vs_flat_mindeg_speedup"] =
      tran_bbd_sec > 0.0 ? tran_mindeg_sec / tran_bbd_sec : 0.0;
  o["bbd_blocks"] = bbd.bbdSolver()->blockCount();
  o["bbd_border"] = bbd.bbdSolver()->borderSize();
  o["bbd_block_refactors"] = bbd.bbdSolver()->blockRefactors();
  o["bbd_block_refactors_skipped"] = bbd.bbdSolver()->blockRefactorsSkipped();

  // Phase attribution of the BBD transient: where the Newton wall time
  // actually goes (fractions of tran_bbd_sec; the remainder is LTE
  // control, device acceptStep, and result storage).
  {
    const SimPhaseTimes ph = bbd.phaseTimes();
    JsonValue::Object phases;
    phases["assembly_frac"] = tran_bbd_sec > 0.0 ? ph.assembly_sec / tran_bbd_sec : 0.0;
    phases["model_eval_frac"] = tran_bbd_sec > 0.0 ? ph.model_eval_sec / tran_bbd_sec : 0.0;
    phases["factor_frac"] = tran_bbd_sec > 0.0 ? ph.factor_sec / tran_bbd_sec : 0.0;
    phases["solve_frac"] = tran_bbd_sec > 0.0 ? ph.solve_sec / tran_bbd_sec : 0.0;
    o["phases"] = JsonValue(std::move(phases));
  }
  return JsonValue(std::move(o));
}

/// Everything the determinism contract promises, checked bitwise.
bool identicalTransients(const TransientResult& a, const TransientResult& b) {
  if (a.steps() != b.steps() || a.total_newton_iterations != b.total_newton_iterations ||
      a.rejected_steps != b.rejected_steps ||
      a.recovery_events.size() != b.recovery_events.size()) {
    return false;
  }
  for (size_t s = 0; s < a.steps(); ++s) {
    if (a.time()[s] != b.time()[s] || a.solution(s) != b.solution(s)) return false;
  }
  return true;
}

/// Parallel sharded assembly at fabric scale: the threads x
/// device-batch matrix on one 200-island pulse-edge transient, against
/// the serial-assembly baseline (same netlist, same BBD + bypass +
/// min-degree stack). Determinism flags are computed bitwise over every
/// accepted step and engine counter; the serial-vs-sharded waveform
/// delta is reported honestly (lane-kernel vs scalar model evaluation,
/// ~1e-7 relative, visibly nonzero).
JsonValue measureFabricAssembly(int islands, double t_stop, double dt_max) {
  FabricSpec spec;
  spec.islands = islands;
  spec.input_pulse.delay = 0.2e-9;

  Circuit c;
  const FabricHandles fab = buildFabric(c, spec);
  auto nodeset = std::make_shared<const std::vector<double>>(fabricDcGuess(c, spec));

  SimOptions base;
  base.nodeset = nodeset;
  base.recovery.ptran_max_steps = 2000;
  base.recovery.ptran_grow = 2.0;
  base.lu_ordering = LuOrdering::MinDegree;
  Simulator op_sim(c, base);
  const std::vector<double> x = op_sim.solveOp();

  SimOptions warm = base;
  warm.nodeset = std::make_shared<const std::vector<double>>(x);
  warm.enable_bypass = true;
  warm.partition = makePartitionSpec(fab);

  JsonValue::Object o;
  o["islands"] = islands;
  o["devices"] = c.devices().size();
  o["t_stop"] = t_stop;
  // Scaling numbers are only meaningful relative to the cores actually
  // present — CI gates its speedup asserts on this field.
  o["hardware_concurrency"] = static_cast<size_t>(std::thread::hardware_concurrency());

  // Serial-assembly baseline (the PR 7 configuration).
  auto t0 = std::chrono::steady_clock::now();
  Simulator serial(c, warm);
  const TransientResult tr_serial = serial.transient(t_stop, dt_max);
  const double serial_sec = secondsSince(t0);
  {
    const SimPhaseTimes ph = serial.phaseTimes();
    JsonValue::Object cell;
    cell["sec"] = serial_sec;
    cell["newton"] = tr_serial.total_newton_iterations;
    cell["steps"] = tr_serial.steps();
    cell["assembly_frac"] = serial_sec > 0.0 ? ph.assembly_sec / serial_sec : 0.0;
    o["serial"] = JsonValue(std::move(cell));
    o["serial_assembly_frac"] = serial_sec > 0.0 ? ph.assembly_sec / serial_sec : 0.0;
  }

  // Threads x device-batch matrix. Threads are pinned explicitly so
  // the matrix is meaningful under any VLS_THREADS; "off" runs the
  // batched groups at width 1 (same lane kernels, scalar chunks).
  struct Cell {
    const char* key;
    int threads;
    int width;
  };
  const Cell cells[] = {{"t1_on", 1, 8}, {"t1_off", 1, 1}, {"t2_on", 2, 8},
                        {"t2_off", 2, 1}, {"t4_on", 4, 8}, {"t4_off", 4, 1}};

  // Keep one full reference result; every other cell is compared
  // bitwise against it immediately and then dropped (a 200-island
  // result holds ~30 MB of solution vectors).
  std::unique_ptr<TransientResult> reference;
  double t1_on_sec = 0.0;
  double t4_on_sec = 0.0;
  bool threads_identical = true;
  bool batch_identical = true;
  for (const Cell& cell : cells) {
    SimOptions opt = warm;
    opt.parallel_assembly = true;
    opt.assembly_threads = cell.threads;
    opt.device_batch_width = cell.width;
    t0 = std::chrono::steady_clock::now();
    Simulator sim(c, opt);
    TransientResult tr = sim.transient(t_stop, dt_max);
    const double sec = secondsSince(t0);

    const SimPhaseTimes ph = sim.phaseTimes();
    JsonValue::Object jcell;
    jcell["sec"] = sec;
    jcell["newton"] = tr.total_newton_iterations;
    jcell["steps"] = tr.steps();
    jcell["assembly_frac"] = sec > 0.0 ? ph.assembly_sec / sec : 0.0;
    jcell["model_eval_frac"] = sec > 0.0 ? ph.model_eval_sec / sec : 0.0;
    o[cell.key] = JsonValue(std::move(jcell));

    if (reference == nullptr) {
      reference = std::make_unique<TransientResult>(std::move(tr));
      t1_on_sec = sec;
      continue;
    }
    const bool same = identicalTransients(*reference, tr);
    if (cell.width == 8) {
      threads_identical = threads_identical && same;
    } else {
      batch_identical = batch_identical && same;
    }
    if (std::string_view(cell.key) == "t4_on") t4_on_sec = sec;
  }
  o["bit_identical_across_threads"] = threads_identical;
  o["bit_identical_batch"] = batch_identical;
  o["speedup_t1_on_vs_serial"] = t1_on_sec > 0.0 ? serial_sec / t1_on_sec : 0.0;
  o["speedup_t4_on_vs_serial"] = t4_on_sec > 0.0 ? serial_sec / t4_on_sec : 0.0;

  // Serial vs sharded waveform agreement at the fabric output.
  {
    const std::string out = c.nodeName(fab.final_out);
    const Signal s_serial = tr_serial.node(out);
    const Signal s_sharded = reference->node(out);
    double max_dv = 0.0;
    for (int i = 0; i <= 100; ++i) {
      const double t = t_stop * i / 100.0;
      const double dv = std::fabs(interpLinear(s_serial.time, s_serial.value, t) -
                                  interpLinear(s_sharded.time, s_sharded.value, t));
      max_dv = std::max(max_dv, dv);
    }
    o["serial_vs_sharded_max_dv"] = max_dv;
  }
  return JsonValue(std::move(o));
}

/// Floorplan-scale fabric section: 10 / 50 / 200 islands; the largest
/// size is the >= 10k-device transient the ordering + BBD work targets.
JsonValue measureFabric() {
  JsonValue::Object o;
  o["threads"] = parallelThreadCount();
  o["i10"] = measureFabricSize(10, 0.7e-9, 10e-12, 20);
  o["i50"] = measureFabricSize(50, 0.7e-9, 10e-12, 10);
  o["i200"] = measureFabricSize(200, 0.7e-9, 10e-12, 5);
  o["assembly"] = measureFabricAssembly(200, 0.7e-9, 10e-12);
  return JsonValue(std::move(o));
}

void writeBenchPerfJson() {
  JsonValue::Object root;
  root["lu_reuse_small"] = measureLuReuse(64, 400);
  root["lu_reuse"] = measureLuReuse(256, 100);
  root["assembly"] = measureAssembly(2000);
  root["assembly_large"] = measureAssemblyLarge(20, 200);
  root["newton_workload"] = measureNewtonWorkload();
  // 32 samples = 4 width-8 batches: at threads=4 x k=8 every worker
  // owns a whole lockstep batch, so the matrix exercises the
  // multiplicative threads x lanes composition.
  root["monte_carlo"] = measureMonteCarloMatrix(32);
  root["ensemble"] = measureEnsembleMonteCarlo(16);
  root["streaming_mc"] = measureStreamingMillion(100000, 1000000);
  root["qmc"] = measureQmcVariance(4096, 8);
  root["fabric"] = measureFabric();
  const JsonValue doc{std::move(root)};
  writeJsonFile("BENCH_perf.json", doc);
  std::cout << "BENCH_perf.json:\n" << doc.dump() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  // --perf_json_only: emit the perf trajectory file and skip the
  // google-benchmark suite (CI smoke mode).
  bool json_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--perf_json_only") {
      json_only = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  writeBenchPerfJson();
  if (json_only) return 0;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
