// Simulator performance microbenchmarks (google-benchmark): sparse LU,
// MOSFET model evaluation, full Newton transient throughput on the
// SS-TVS testbench, and the characterization harness end to end.
#include <benchmark/benchmark.h>

#include "analysis/shifter_harness.hpp"
#include "cells/sstvs.hpp"
#include "devices/model_library.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "numeric/lu_sparse.hpp"
#include "numeric/rng.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace vls;

void BM_SparseLuFactorSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(42);
  SparseMatrix m(n);
  for (int i = 0; i < n; ++i) {
    m.add(i, i, 4.0 + rng.uniform());
    if (i > 0) {
      m.add(i, i - 1, -1.0);
      m.add(i - 1, i, -1.0);
    }
    // A few long-range couplings, circuit-style.
    const int j = static_cast<int>(rng.below(n));
    m.add(i, j, 0.1);
  }
  std::vector<double> b(n, 1.0);
  for (auto _ : state) {
    SparseLu lu(m);
    benchmark::DoNotOptimize(lu.solve(b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SparseLuFactorSolve)->Arg(16)->Arg(64)->Arg(256);

void BM_MosfetCoreEval(benchmark::State& state) {
  const MosModelCard& card = *nmos90();
  MosGeometry g;
  const MosOperating op = resolveOperating(card, g, 300.15);
  double vg = 0.8;
  for (auto _ : state) {
    using D3 = Dual<3>;
    const D3 i = mosCoreCurrent(card, op, D3::seed(vg, 0), D3::seed(1.2, 1), D3::seed(0.0, 2));
    benchmark::DoNotOptimize(i);
    vg = vg == 0.8 ? 0.3 : 0.8;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MosfetCoreEval);

void BM_SstvsOperatingPoint(benchmark::State& state) {
  Circuit c;
  const NodeId vddo = c.node("vddo");
  const NodeId in = c.node("in");
  c.add<VoltageSource>("vo", vddo, kGround, 1.2);
  c.add<VoltageSource>("vin", in, kGround, 0.8);
  buildSstvs(c, "x", in, c.node("out"), vddo, {});
  Simulator sim(c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.solveOp());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SstvsOperatingPoint);

void BM_SstvsTransientNanosecond(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Circuit c;
    const NodeId vddo = c.node("vddo");
    const NodeId in = c.node("in");
    c.add<VoltageSource>("vo", vddo, kGround, 1.2);
    PulseSpec p;
    p.v1 = 0.8;
    p.v2 = 0.0;
    p.delay = 0.2e-9;
    p.rise = p.fall = 20e-12;
    p.width = 0.4e-9;
    c.add<VoltageSource>("vin", in, kGround, Waveform::pulse(p));
    buildSstvs(c, "x", in, c.node("out"), vddo, {});
    c.add<Capacitor>("cl", c.node("out"), kGround, 1e-15);
    Simulator sim(c);
    state.ResumeTiming();
    benchmark::DoNotOptimize(sim.transient(1e-9, 50e-12));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SstvsTransientNanosecond);

void BM_FullCharacterization(benchmark::State& state) {
  for (auto _ : state) {
    HarnessConfig cfg;
    cfg.kind = ShifterKind::Sstvs;
    benchmark::DoNotOptimize(measureShifter(cfg));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullCharacterization)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
