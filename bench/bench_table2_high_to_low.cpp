// Table 2 of the paper: high -> low level shifting (1.2 V -> 0.8 V at
// 27 C), SS-TVS vs the combined VS (inverter path selected).
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace vls;
  using namespace vls::bench;
  const Flags flags(argc, argv);
  const double vddi = flags.getDouble("vddi", 1.2);
  const double vddo = flags.getDouble("vddo", 0.8);

  std::cout << "bench_table2_high_to_low: VDDI=" << vddi << " V -> VDDO=" << vddo
            << " V, T=27C (paper Table 2)\n";
  const auto [tvs, comb] = characterizePair(vddi, vddo);

  const PaperColumn paper_tvs{34.9, 15.7, -1, -1, 7.3, 3.9};
  const PaperColumn paper_comb{46.5, 35.2, -1, -1, 32.5, 36.3};
  printCharacterizationTable("Table 2: High to Low Level Shifting", tvs, comb, paper_tvs,
                             paper_comb);

  std::cout << "\nFunctional: SS-TVS=" << (tvs.functional ? "yes" : "NO")
            << "  Combined=" << (comb.functional ? "yes" : "NO") << "\n";
  return (tvs.functional && comb.functional) ? 0 : 1;
}
