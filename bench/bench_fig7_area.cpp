// Figure 7 of the paper: the SS-TVS layout. The paper reports a cell
// area of 4.47 um^2 (0.837 um x 5.355 um). We substitute an analytic
// standard-cell area model (DESIGN.md §4) and compare, including the
// comparison cells for context.
#include <iostream>

#include "analysis/area.hpp"
#include "bench_util.hpp"
#include "cells/level_shifters.hpp"
#include "cells/sstvs.hpp"

int main() {
  using namespace vls;
  std::cout << "bench_fig7_area: analytic layout-area estimate (paper Figure 7)\n";

  Circuit c;
  const NodeId vddo = c.node("vddo");
  const SstvsHandles tvs = buildSstvs(c, "xt", c.node("i1"), c.node("o1"), vddo, {});
  const CombinedVsHandles comb = buildCombinedVs(c, "xc", c.node("i2"), c.node("o2"),
                                                 c.node("sel"), c.node("selb"), vddo, {});
  const SsvsKhanHandles khan = buildSsvsKhan(c, "xk", c.node("i3"), c.node("o3"), vddo, {});

  Table t({"Cell", "Transistors", "Area (um^2)", "Paper (um^2)"});
  auto row = [&](const char* name, const MosList& fets, const char* paper) {
    t.addRow({name, std::to_string(fets.size()),
              Table::fmtScaled(estimateCellArea(fets), 1e-12, 2), paper});
  };
  row("SS-TVS", tvs.fets, "4.47");
  row("SS-VS of [6] (reconstruction)", khan.fets, "n/r");
  row("Combined VS (Figure 6)", comb.fets, "n/r");
  t.print(std::cout);

  const CellBox box = estimateCellBox(tvs.fets);
  std::cout << "SS-TVS bounding box at the paper's aspect ratio: "
            << Table::fmtScaled(box.width, 1e-6, 3) << " um x "
            << Table::fmtScaled(box.height, 1e-6, 3)
            << " um (paper: 0.837 um x 5.355 um)\n";
  return 0;
}
