// Shared implementation of the paper's delay-surface figures (8 and 9).
#pragma once

#include <iostream>

#include "analysis/sweep.hpp"
#include "bench_util.hpp"
#include "io/csv.hpp"

namespace vls::bench {

inline int runDelaySweep(const char* name, bool rising, const Flags& flags) {
  const double step = flags.getDouble("step", 0.1);
  std::cout << name << ": SS-TVS " << (rising ? "rising" : "falling")
            << " delay over VDDI x VDDO in [0.8, 1.4] V, step " << step
            << " V (paper: 5 mV; pass --step=0.005 to match)\n";

  HarnessConfig base;
  base.kind = ShifterKind::Sstvs;
  Sweep2dConfig cfg;
  cfg.v_min = 0.8;
  cfg.v_max = 1.4;
  cfg.step = step;
  const Sweep2dResult r = sweepSupplies(base, cfg);

  // Matrix print: rows VDDI, columns VDDO, cell = delay in ps.
  std::vector<std::string> header = {"VDDI\\VDDO (V)"};
  for (double v : r.vddo_axis) header.push_back(Table::fmt(v, 3));
  Table t(header);
  for (size_t i = 0; i < r.vddi_axis.size(); ++i) {
    std::vector<std::string> row = {Table::fmt(r.vddi_axis[i], 3)};
    for (size_t j = 0; j < r.vddo_axis.size(); ++j) {
      const auto& m = r.at(i, j).metrics;
      const double d = rising ? m.delay_rise : m.delay_fall;
      row.push_back(m.functional ? Table::fmtScaled(d, 1e-12, 1) : std::string("FAIL"));
    }
    t.addRow(row);
  }
  t.print(std::cout);
  std::cout << "functional points: " << r.functionalCount() << " / " << r.points.size()
            << " (paper: all combinations convert correctly)\n";

  // CSV of the full surface for plotting.
  std::vector<CsvColumn> cols(3);
  cols[0].name = "vddi";
  cols[1].name = "vddo";
  cols[2].name = rising ? "delay_rise_s" : "delay_fall_s";
  for (const auto& p : r.points) {
    cols[0].values.push_back(p.vddi);
    cols[1].values.push_back(p.vddo);
    cols[2].values.push_back(rising ? p.metrics.delay_rise : p.metrics.delay_fall);
  }
  const std::string csv = std::string(name) + ".csv";
  writeCsv(csv, cols);
  std::cout << "surface written to " << csv << "\n";
  return r.functionalCount() == r.points.size() ? 0 : 1;
}

}  // namespace vls::bench
