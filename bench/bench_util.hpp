// Shared plumbing for the experiment benches: flag parsing, the
// paper-vs-measured table layout, and the standard comparison runs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "analysis/shifter_harness.hpp"
#include "io/table.hpp"

namespace vls::bench {

/// Minimal --key=value flag reader.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  double getDouble(const std::string& key, double fallback) const {
    const auto v = find(key);
    return v ? std::atof(v->c_str()) : fallback;
  }
  int getInt(const std::string& key, int fallback) const {
    const auto v = find(key);
    return v ? std::atoi(v->c_str()) : fallback;
  }
  bool getBool(const std::string& key) const {
    for (const auto& a : args_) {
      if (a == "--" + key) return true;
    }
    return find(key).has_value();
  }

 private:
  std::optional<std::string> find(const std::string& key) const {
    const std::string prefix = "--" + key + "=";
    for (const auto& a : args_) {
      if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
    }
    return std::nullopt;
  }
  std::vector<std::string> args_;
};

/// Paper reference values for one table (ps / uW / nA units as printed).
struct PaperColumn {
  double delay_rise_ps;
  double delay_fall_ps;
  double power_rise_uw;   ///< <= 0 when the paper omitted the value
  double power_fall_uw;
  double leak_high_na;
  double leak_low_na;
};

/// Print one of the paper's characterization tables (Table 1 / 2
/// layout) with our measured values next to the paper's.
inline void printCharacterizationTable(const std::string& title, const ShifterMetrics& tvs,
                                       const ShifterMetrics& comb, const PaperColumn& paper_tvs,
                                       const PaperColumn& paper_comb) {
  std::cout << "\n=== " << title << " ===\n";
  Table t({"Performance Parameter", "SS-TVS (measured)", "Combined VS (measured)",
           "SS-TVS (paper)", "Combined VS (paper)"});
  auto ps = [](double s) { return Table::fmtScaled(s, 1e-12, 1); };
  auto uw = [](double w) { return Table::fmtScaled(w, 1e-6, 2); };
  auto na = [](double a) { return Table::fmtScaled(a, 1e-9, 2); };
  auto ref = [](double v) { return v > 0 ? Table::fmt(v, 4) : std::string("n/r"); };
  t.addRow({"Delay Rise (ps)", ps(tvs.delay_rise), ps(comb.delay_rise),
            ref(paper_tvs.delay_rise_ps), ref(paper_comb.delay_rise_ps)});
  t.addRow({"Delay Fall (ps)", ps(tvs.delay_fall), ps(comb.delay_fall),
            ref(paper_tvs.delay_fall_ps), ref(paper_comb.delay_fall_ps)});
  t.addRow({"Power Rise (uW)", uw(tvs.power_rise), uw(comb.power_rise),
            ref(paper_tvs.power_rise_uw), ref(paper_comb.power_rise_uw)});
  t.addRow({"Power Fall (uW)", uw(tvs.power_fall), uw(comb.power_fall),
            ref(paper_tvs.power_fall_uw), ref(paper_comb.power_fall_uw)});
  t.addRow({"Leakage Current High (nA)", na(tvs.leakage_high), na(comb.leakage_high),
            ref(paper_tvs.leak_high_na), ref(paper_comb.leak_high_na)});
  t.addRow({"Leakage Current Low (nA)", na(tvs.leakage_low), na(comb.leakage_low),
            ref(paper_tvs.leak_low_na), ref(paper_comb.leak_low_na)});
  t.print(std::cout);

  Table r({"Ratio (Combined / SS-TVS)", "measured", "paper"});
  auto ratio = [](double a, double b) { return b > 0 ? Table::fmt(a / b, 3) : std::string("-"); };
  auto pratio = [](double a, double b) {
    return (a > 0 && b > 0) ? Table::fmt(a / b, 3) : std::string("-");
  };
  r.addRow({"Delay Rise", ratio(comb.delay_rise, tvs.delay_rise),
            pratio(paper_comb.delay_rise_ps, paper_tvs.delay_rise_ps)});
  r.addRow({"Delay Fall", ratio(comb.delay_fall, tvs.delay_fall),
            pratio(paper_comb.delay_fall_ps, paper_tvs.delay_fall_ps)});
  r.addRow({"Leakage High", ratio(comb.leakage_high, tvs.leakage_high),
            pratio(paper_comb.leak_high_na, paper_tvs.leak_high_na)});
  r.addRow({"Leakage Low", ratio(comb.leakage_low, tvs.leakage_low),
            pratio(paper_comb.leak_low_na, paper_tvs.leak_low_na)});
  r.print(std::cout);
}

/// Worst-case characterization of both cells at one supply pair.
inline std::pair<ShifterMetrics, ShifterMetrics> characterizePair(double vddi, double vddo) {
  HarnessConfig cfg;
  cfg.vddi = vddi;
  cfg.vddo = vddo;
  cfg.kind = ShifterKind::Sstvs;
  const ShifterMetrics tvs = measureShifterWorstCase(cfg);
  cfg.kind = ShifterKind::CombinedVs;
  const ShifterMetrics comb = measureShifterWorstCase(cfg);
  return {tvs, comb};
}

}  // namespace vls::bench
