// Extension bench: which SS-TVS transistor dominates each metric's
// process sensitivity? Decomposes the Monte-Carlo sigma of Table 3
// into per-device contributions and cross-checks the RSS prediction
// against the sampled sigma.
#include <iostream>

#include "analysis/monte_carlo.hpp"
#include "analysis/sensitivity.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace vls;
  using namespace vls::bench;
  const Flags flags(argc, argv);

  HarnessConfig cfg;
  cfg.kind = ShifterKind::Sstvs;
  cfg.vddi = 0.8;
  cfg.vddo = 1.2;
  std::cout << "bench_sensitivity: per-device VT sensitivities of the SS-TVS\n"
               "(central differences, +-10 mV probes, 0.8 -> 1.2 V)\n\n";

  const SensitivityReport rep = analyzeVtSensitivity(cfg);
  Table t({"Device", "d(rise)/dVT (ps/V)", "d(fall)/dVT (ps/V)", "d(leak hi)/dVT (nA/V)",
           "d(leak lo)/dVT (nA/V)", "sigma contrib rise (ps)"});
  for (const auto& e : rep.entries) {
    t.addRow({e.device, Table::fmtScaled(e.d_delay_rise, 1e-12, 0),
              Table::fmtScaled(e.d_delay_fall, 1e-12, 0),
              Table::fmtScaled(e.d_leak_high, 1e-9, 1), Table::fmtScaled(e.d_leak_low, 1e-9, 1),
              Table::fmtScaled(e.sigma_contrib_rise, 1e-12, 2)});
  }
  t.print(std::cout);

  // Cross-check: the RSS of the linear contributions should predict the
  // sampled Monte-Carlo sigma of Table 3 (VT variation part of it).
  MonteCarloConfig mc;
  mc.samples = flags.getInt("samples", 60);
  mc.seed = 17;
  mc.variation.sigma_w = 0.0;  // isolate the VT term
  mc.variation.sigma_l = 0.0;
  const MonteCarloResult sampled = runMonteCarlo(cfg, mc);
  std::cout << "\nRSS-predicted rising-delay sigma (VT-only): "
            << Table::fmtScaled(rep.predicted_sigma_rise, 1e-12, 2) << " ps\n";
  std::cout << "Monte-Carlo sampled sigma (VT-only, " << mc.samples
            << " samples):      " << Table::fmtScaled(sampled.delayRise().stddev, 1e-12, 2)
            << " ps\n";
  const double ratio = sampled.delayRise().stddev / rep.predicted_sigma_rise;
  std::cout << "ratio " << Table::fmt(ratio, 3)
            << " (1.0 = the linear sensitivity model explains the MC spread)\n";
  return 0;
}
