// Table 1 of the paper: low -> high level shifting (0.8 V -> 1.2 V at
// 27 C). Characterizes the SS-TVS against the combined VS of Figure 6
// under worst-case input sequences and prints the table with the
// paper's numbers alongside.
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace vls;
  using namespace vls::bench;
  const Flags flags(argc, argv);
  const double vddi = flags.getDouble("vddi", 0.8);
  const double vddo = flags.getDouble("vddo", 1.2);

  std::cout << "bench_table1_low_to_high: VDDI=" << vddi << " V -> VDDO=" << vddo
            << " V, T=27C (paper Table 1)\n";
  const auto [tvs, comb] = characterizePair(vddi, vddo);

  // Paper Table 1 values (power for the combined VS derived from the
  // stated 2.6x / 3.5x advantages; marked derived).
  const PaperColumn paper_tvs{22.0, 33.3, -1, -1, 20.8, 3.6};
  const PaperColumn paper_comb{122.6, 50.5, -1, -1, 157.2, 71.1};
  printCharacterizationTable("Table 1: Low to High Level Shifting", tvs, comb, paper_tvs,
                             paper_comb);

  std::cout << "\nFunctional: SS-TVS=" << (tvs.functional ? "yes" : "NO")
            << "  Combined=" << (comb.functional ? "yes" : "NO") << "\n";
  std::cout << "Expected shape: SS-TVS faster on both edges and far lower leakage\n"
               "with the output low (the state where the combined VS's VDDI-high\n"
               "input on a VDDO-supplied PMOS gate burns).\n";
  return (tvs.functional && comb.functional) ? 0 : 1;
}
