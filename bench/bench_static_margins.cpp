// Extension bench: static transfer characteristics and noise margins of
// every shifter at the paper's operating points — the DC complement to
// the dynamic Tables 1/2.
#include <iostream>

#include "analysis/static_margins.hpp"
#include "bench_util.hpp"

int main() {
  using namespace vls;
  using namespace vls::bench;
  std::cout << "bench_static_margins: DC transfer characteristics and noise margins\n";

  for (auto [vddi, vddo] : {std::pair{0.8, 1.2}, std::pair{1.2, 0.8}, std::pair{0.8, 1.4}}) {
    std::cout << "\n--- VDDI=" << vddi << " V -> VDDO=" << vddo << " V ---\n";
    Table t({"Cell", "VOL (V)", "VOH (V)", "VIL (V)", "VIH (V)", "NML (V)", "NMH (V)",
             "peak |gain|"});
    for (ShifterKind kind : {ShifterKind::Sstvs, ShifterKind::CombinedVs, ShifterKind::SsvsKhan,
                             ShifterKind::SsvsPuri, ShifterKind::InverterOnly}) {
      HarnessConfig cfg;
      cfg.kind = kind;
      cfg.vddi = vddi;
      cfg.vddo = vddo;
      StaticMargins m;
      try {
        m = measureStaticMargins(cfg);
      } catch (const Error&) {
        t.addRow({shifterKindName(kind), "-", "-", "-", "-", "-", "-", "SIM FAIL"});
        continue;
      }
      if (!m.static_transition) {
        t.addRow({shifterKindName(kind), Table::fmt(m.vol, 3), Table::fmt(m.voh, 3), "-", "-",
                  "-", "-", "dynamic-only"});
        continue;
      }
      t.addRow({shifterKindName(kind), Table::fmt(m.vol, 3), Table::fmt(m.voh, 3),
                Table::fmt(m.vil, 3), Table::fmt(m.vih, 3), Table::fmt(m.nml, 3),
                Table::fmt(m.nmh, 3),
                Table::fmt(m.peak_gain, 3) + (m.fully_converged ? "" : " (gaps)")});
    }
    t.print(std::cout);
  }
  std::cout << "\nFinding: the SS-TVS up-shift path is DYNAMIC-ONLY — a quasi-static\n"
               "input ramp lets the ctrl node track the input through M2, M1 never\n"
               "gains gate drive, and node2 stays latched. The cell operates on\n"
               "stored edge charge (which is why the paper discusses input-sequence\n"
               "dependence); its down-shift path and all static cells show normal\n"
               "regenerative DC curves.\n";
  return 0;
}
