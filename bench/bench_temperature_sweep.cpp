// Extension bench: temperature dependence of the SS-TVS and combined VS
// (the paper reports 27/60/90 C Monte-Carlo runs as "substantially
// similar"; this sweeps the nominal cells over 0..100 C and shows the
// expected trends: leakage exponential in T, delays mildly increasing).
#include <iostream>

#include "bench_util.hpp"
#include "io/csv.hpp"

int main(int argc, char** argv) {
  using namespace vls;
  using namespace vls::bench;
  const Flags flags(argc, argv);
  const double step = flags.getDouble("step", 20.0);

  std::cout << "bench_temperature_sweep: 0.8 -> 1.2 V characterization vs temperature\n";
  Table t({"T (C)", "TVS rise (ps)", "TVS leak hi (nA)", "TVS leak lo (nA)",
           "Comb rise (ps)", "Comb leak lo (nA)", "both functional"});
  std::vector<CsvColumn> cols = {{"temp_c", {}},    {"tvs_rise_s", {}}, {"tvs_leak_hi_a", {}},
                                 {"tvs_leak_lo_a", {}}, {"comb_rise_s", {}}, {"comb_leak_lo_a", {}}};
  bool all_ok = true;
  double leak_0c = 0.0;
  double leak_100c = 0.0;
  for (double temp = 0.0; temp <= 100.0 + 1e-9; temp += step) {
    HarnessConfig cfg;
    cfg.vddi = 0.8;
    cfg.vddo = 1.2;
    cfg.temperature_c = temp;
    cfg.kind = ShifterKind::Sstvs;
    const ShifterMetrics tvs = measureShifter(cfg);
    cfg.kind = ShifterKind::CombinedVs;
    const ShifterMetrics comb = measureShifter(cfg);
    all_ok = all_ok && tvs.functional && comb.functional;
    if (temp == 0.0) leak_0c = tvs.leakage_high;
    leak_100c = tvs.leakage_high;
    t.addRow({Table::fmt(temp, 3), Table::fmtScaled(tvs.delay_rise, 1e-12, 1),
              Table::fmtScaled(tvs.leakage_high, 1e-9, 3),
              Table::fmtScaled(tvs.leakage_low, 1e-9, 3),
              Table::fmtScaled(comb.delay_rise, 1e-12, 1),
              Table::fmtScaled(comb.leakage_low, 1e-9, 1),
              (tvs.functional && comb.functional) ? "yes" : "NO"});
    cols[0].values.push_back(temp);
    cols[1].values.push_back(tvs.delay_rise);
    cols[2].values.push_back(tvs.leakage_high);
    cols[3].values.push_back(tvs.leakage_low);
    cols[4].values.push_back(comb.delay_rise);
    cols[5].values.push_back(comb.leakage_low);
  }
  t.print(std::cout);
  writeCsv("temperature_sweep.csv", cols);
  std::cout << "curves written to temperature_sweep.csv\n";
  std::cout << "leakage growth 0C -> 100C: " << Table::fmt(leak_100c / leak_0c, 3)
            << "x (expect ~1.5-2 decades for subthreshold conduction)\n";
  return all_ok ? 0 : 1;
}
