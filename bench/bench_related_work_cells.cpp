// Extension bench: the full cast of Section 2 — every level-shifter
// approach the paper discusses, characterized side by side at the
// paper's two operating points. Shows WHERE each prior approach breaks
// (Puri [13] leaks past a VT of rail gap; the bootstrapped cell [9]
// leaks like an inverter; Khan [6] is up-shift-only slow) and that the
// SS-TVS is the only one that is simultaneously fast, tight and true.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace vls;
  using namespace vls::bench;
  std::cout << "bench_related_work_cells: all Section-2 approaches side by side\n";

  const ShifterKind kinds[] = {ShifterKind::Sstvs, ShifterKind::CombinedVs,
                               ShifterKind::SsvsKhan, ShifterKind::SsvsPuri,
                               ShifterKind::Bootstrap, ShifterKind::InverterOnly};

  for (auto [vddi, vddo] : {std::pair{0.8, 1.2}, std::pair{1.2, 0.8}, std::pair{0.8, 1.4}}) {
    std::cout << "\n--- VDDI=" << vddi << " V -> VDDO=" << vddo << " V ---\n";
    Table t({"Cell", "rise (ps)", "fall (ps)", "leak high (nA)", "leak low (nA)",
             "functional"});
    for (ShifterKind kind : kinds) {
      HarnessConfig cfg;
      cfg.kind = kind;
      cfg.vddi = vddi;
      cfg.vddo = vddo;
      ShifterMetrics m;
      bool crashed = false;
      try {
        m = measureShifter(cfg);
      } catch (const Error&) {
        crashed = true;
      }
      if (crashed) {
        t.addRow({shifterKindName(kind), "-", "-", "-", "-", "SIM FAIL"});
        continue;
      }
      t.addRow({shifterKindName(kind), Table::fmtScaled(m.delay_rise, 1e-12, 1),
                Table::fmtScaled(m.delay_fall, 1e-12, 1),
                Table::fmtScaled(m.leakage_high, 1e-9, 3),
                Table::fmtScaled(m.leakage_low, 1e-9, 3), m.functional ? "yes" : "NO"});
    }
    t.print(std::cout);
  }
  std::cout << "\nReading guide: the inverter and the up-shifters are expected to fail\n"
               "or leak in at least one direction/corner; only the SS-TVS (and the\n"
               "control-signal-steered combined VS) stay functional everywhere.\n";
  return 0;
}
