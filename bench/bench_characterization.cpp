// Characterization-farm perf bench: lane-batched vs scalar-loop
// points/sec at threads {1, 4} x lane width {1, 8}, the lane-vs-scalar
// table agreement, and one full production farm run (every cell kind x
// the standard corner set, 5x5 NLDM grids) written out as
// sstvs_nldm.lib and checked against the structure validator.
//
// Results merge into BENCH_perf.json as the "characterization" section
// (text-level: the existing section's brace-matched span is replaced,
// otherwise the section is inserted before the document's closing
// brace), so this bench composes with bench_perf_solver
// --perf_json_only in either run order.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/characterize.hpp"
#include "io/json_writer.hpp"
#include "io/liberty_validate.hpp"
#include "io/liberty_writer.hpp"

namespace vls {
namespace {

double secondsSince(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// The speed-matrix workload: every cell kind at the typical corner,
/// production 5x5 grid, grid timing only (no static harness).
CharRequest matrixRequest() {
  CharRequest req;
  req.corners = {CharCorner{}};
  req.grid.static_metrics = false;
  return req;
}

struct MatrixCell {
  double sec = 0.0;
  double points_per_sec = 0.0;
  size_t scalar_fallbacks = 0;
};

MatrixCell runMatrixCell(const CharRequest& base, bool use_lanes, size_t width, int threads,
                         std::vector<CharTable>* tables_out) {
  CharRequest req = base;
  req.grid.use_lanes = use_lanes;
  req.grid.lane_width = width;
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%d", threads);
  setenv("VLS_THREADS", buf, 1);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<CharTable> tables = characterizeCells(req);
  MatrixCell cell;
  cell.sec = secondsSince(t0);
  size_t points = 0;
  for (const CharTable& t : tables) {
    points += t.points.size();
    cell.scalar_fallbacks += t.scalar_fallbacks;
  }
  cell.points_per_sec = cell.sec > 0.0 ? static_cast<double>(points) / cell.sec : 0.0;
  if (tables_out != nullptr) *tables_out = std::move(tables);
  return cell;
}

JsonValue toJson(const MatrixCell& c) {
  JsonValue::Object o;
  o["sec"] = c.sec;
  o["points_per_sec"] = c.points_per_sec;
  o["scalar_fallbacks"] = c.scalar_fallbacks;
  return JsonValue(std::move(o));
}

/// Lane-vs-scalar table disagreement under the CharGrid::lane_rel_tol
/// contract: per-entry relative on the timing metrics (1 fs floor),
/// peak-switching-energy-normalized on the power metrics.
/// Full-scale relative disagreement per metric family (the
/// CharGrid::lane_rel_tol contract): |lane - scalar| normalized by the
/// scalar table's peak magnitude of that family. Per-entry relative
/// error would divide fs-level solver reproducibility noise by
/// near-zero entries (sub-ps inverter delays, the near-cancelling
/// quiet-slot energy integral).
double maxRelErr(const std::vector<CharTable>& lanes, const std::vector<CharTable>& scalar) {
  auto metric = [](const CharPoint& p, int m) {
    switch (m) {
      case 0: return p.delay_rise;
      case 1: return p.delay_fall;
      case 2: return p.trans_rise;
      case 3: return p.trans_fall;
      case 4: return p.energy_rise;
      default: return p.energy_fall;
    }
  };
  double worst = 0.0;
  for (size_t t = 0; t < lanes.size() && t < scalar.size(); ++t) {
    for (int m = 0; m < 6; ++m) {
      // The power tables share one full scale (peak switching energy):
      // the quieter slot's own peak is a small difference of large
      // integrals, not a meaningful scale.
      const int peak_lo = m < 4 ? m : 4;
      const int peak_hi = m < 4 ? m : 5;
      double peak = 0.0;
      for (const CharPoint& q : scalar[t].points) {
        for (int pm = peak_lo; pm <= peak_hi; ++pm) {
          peak = std::max(peak, std::fabs(metric(q, pm)));
        }
      }
      if (peak <= 0.0) continue;
      for (size_t i = 0; i < lanes[t].points.size(); ++i) {
        worst = std::max(
            worst, std::fabs(metric(lanes[t].points[i], m) - metric(scalar[t].points[i], m)) / peak);
      }
    }
  }
  return worst;
}

/// Merge `section` under `key` into the JSON document at `path`: the
/// existing "key": {...} span (brace-matched, quote-aware) is replaced
/// in place, otherwise the pair is inserted before the final '}'. A
/// missing file becomes a fresh single-section document.
void mergeJsonSection(const std::string& path, const std::string& key,
                      const std::string& section) {
  std::string text;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      text = ss.str();
    }
  }
  const std::string pair = "\"" + key + "\": " + section;
  if (text.find('{') == std::string::npos) {
    text = "{\n  " + pair + "\n}\n";
  } else {
    const std::string needle = "\"" + key + "\":";
    const size_t at = text.find(needle);
    if (at != std::string::npos) {
      const size_t open = text.find('{', at + needle.size());
      size_t end = std::string::npos;
      if (open != std::string::npos) {
        int depth = 0;
        bool quoted = false;
        for (size_t i = open; i < text.size(); ++i) {
          const char c = text[i];
          if (quoted) {
            if (c == '\\') ++i;
            if (c == '"') quoted = false;
            continue;
          }
          if (c == '"') quoted = true;
          if (c == '{') ++depth;
          if (c == '}' && --depth == 0) {
            end = i;
            break;
          }
        }
      }
      if (end != std::string::npos) {
        text.replace(at, end + 1 - at, pair);
      }
    } else {
      const size_t close = text.rfind('}');
      const size_t last_content = text.find_last_not_of(" \t\r\n", close - 1);
      const bool empty_doc = last_content != std::string::npos && text[last_content] == '{';
      text.insert(close, std::string(empty_doc ? "" : ",") + "\n  " + pair + "\n");
    }
  }
  std::ofstream out(path);
  out << text;
}

int runBench() {
  JsonValue::Object o;
  o["hardware_concurrency"] = static_cast<size_t>(std::thread::hardware_concurrency());

  const CharRequest base = matrixRequest();
  o["grid_slews"] = base.grid.slews.size();
  o["grid_loads"] = base.grid.loads.size();
  o["cells"] = base.kinds.size();

  // Speed matrix. The scalar loop is the reference implementation; the
  // lane-vs-scalar agreement is measured on the one-thread runs (their
  // tables are what the acceptance bound speaks about).
  std::vector<CharTable> scalar_tables;
  std::vector<CharTable> lane_tables;
  JsonValue::Object matrix;
  const MatrixCell scalar_t1 = runMatrixCell(base, false, 1, 1, &scalar_tables);
  matrix["scalar_t1"] = toJson(scalar_t1);
  const MatrixCell lanes_w1_t1 = runMatrixCell(base, true, 1, 1, nullptr);
  matrix["lanes_w1_t1"] = toJson(lanes_w1_t1);
  const MatrixCell lanes_w8_t1 = runMatrixCell(base, true, 8, 1, &lane_tables);
  matrix["lanes_w8_t1"] = toJson(lanes_w8_t1);
  matrix["scalar_t4"] = toJson(runMatrixCell(base, false, 1, 4, nullptr));
  matrix["lanes_w1_t4"] = toJson(runMatrixCell(base, true, 1, 4, nullptr));
  const MatrixCell lanes_w8_t4 = runMatrixCell(base, true, 8, 4, nullptr);
  matrix["lanes_w8_t4"] = toJson(lanes_w8_t4);
  unsetenv("VLS_THREADS");
  o["matrix"] = JsonValue(std::move(matrix));

  const double speedup_w8_t1 =
      scalar_t1.points_per_sec > 0.0 ? lanes_w8_t1.points_per_sec / scalar_t1.points_per_sec
                                     : 0.0;
  o["lane_speedup_w8_t1"] = speedup_w8_t1;
  o["lane_speedup_w8_t4"] = scalar_t1.points_per_sec > 0.0
                                ? lanes_w8_t4.points_per_sec / scalar_t1.points_per_sec
                                : 0.0;
  const double max_rel_err = maxRelErr(lane_tables, scalar_tables);
  o["max_rel_err"] = max_rel_err;
  o["rel_tol"] = base.grid.lane_rel_tol;

  // Full production farm: every kind x the standard corner pair, static
  // metrics on, lane-batched — the run that ships the .lib. Runs with
  // checkpointing armed (the resumable-production configuration); the
  // checkpoint file is removed once the run lands.
  {
    CharRequest farm;
    farm.checkpoint_path = "bench_farm.vlsckpt";
    std::remove(farm.checkpoint_path.c_str());  // never resume a stale file
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<CharTable> tables = characterizeCells(farm);
    const double farm_sec = secondsSince(t0);
    std::remove(farm.checkpoint_path.c_str());

    size_t points = 0;
    size_t fallbacks = 0;
    size_t retried = 0;
    size_t skipped = 0;
    for (const CharTable& t : tables) {
      points += t.points.size();
      fallbacks += t.scalar_fallbacks;
      retried += t.retried_points;
      skipped += t.failures.size();
    }
    const std::vector<LibertyCellData> cells = libertyCellsFromCharacterization(tables);
    const std::string lib = writeLiberty(LibertyLibrarySpec{}, cells);
    {
      std::ofstream out("sstvs_nldm.lib");
      out << lib;
    }
    const LibertyValidation v = validateLiberty(lib);

    JsonValue::Object farm_o;
    farm_o["tasks"] = tables.size();
    farm_o["points"] = points;
    farm_o["sec"] = farm_sec;
    farm_o["points_per_sec"] = farm_sec > 0.0 ? static_cast<double>(points) / farm_sec : 0.0;
    farm_o["scalar_fallbacks"] = fallbacks;
    // Degrade-don't-abort counters: points that needed an escalated
    // retry, and points recorded as unrecovered holes (skipped).
    farm_o["retried_points"] = retried;
    farm_o["skipped_points"] = skipped;
    farm_o["lib_file"] = "sstvs_nldm.lib";
    farm_o["lib_valid"] = v.ok();
    farm_o["lib_cells"] = v.cell_count;
    farm_o["lib_tables"] = v.table_count;
    farm_o["lib_summary"] = v.summary();
    o["farm"] = JsonValue(std::move(farm_o));
  }

  const JsonValue section{std::move(o)};
  // Indent the section body one level so the merged document stays
  // readable (dump() emits a top-level layout).
  std::string body = section.dump();
  std::string indented;
  for (size_t i = 0; i < body.size(); ++i) {
    indented += body[i];
    if (body[i] == '\n' && i + 1 < body.size()) indented += "  ";
  }
  mergeJsonSection("BENCH_perf.json", "characterization", indented);
  std::cout << "characterization:\n" << body << "\n";
  return 0;
}

}  // namespace
}  // namespace vls

int main() { return vls::runBench(); }
