// Figure 8 of the paper: rising delay of the SS-TVS as VDDI and VDDO
// vary over [0.8, 1.4] V. The paper's claim: smooth variation across
// the whole range, with every point functional.
#include "bench_sweep_common.hpp"

int main(int argc, char** argv) {
  using namespace vls::bench;
  return runDelaySweep("bench_fig8_rising_delay_sweep", /*rising=*/true, Flags(argc, argv));
}
