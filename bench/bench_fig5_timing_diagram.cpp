// Figure 5 of the paper: the SS-TVS timing diagram (in, node1, node2,
// ctrl, out) for both conversion scenarios. Prints a sampled table and
// writes full-resolution CSVs next to the binary for plotting.
#include <iostream>

#include "bench_util.hpp"
#include "io/ascii_plot.hpp"
#include "io/csv.hpp"
#include "numeric/interpolation.hpp"

namespace {

void runScenario(const char* tag, double vddi, double vddo) {
  using namespace vls;
  HarnessConfig cfg;
  cfg.kind = ShifterKind::Sstvs;
  cfg.vddi = vddi;
  cfg.vddo = vddo;
  cfg.bits = {1, 0, 1, 0};
  ShifterTestbench tb(cfg);
  const ShifterMetrics m = tb.measure();
  const TransientResult& run = tb.lastRun();

  std::cout << "\n--- Figure 5 timing diagram, " << tag << " (VDDI=" << vddi
            << " V, VDDO=" << vddo << " V), functional=" << (m.functional ? "yes" : "NO")
            << " ---\n";
  const std::vector<std::string> nodes = {"in", "xdut.node1", "xdut.node2", "xdut.ctrl", "out"};
  Table t({"t (ns)", "in", "node1", "node2", "ctrl", "out"});
  for (double tt = 0.0; tt <= 4.0e-9 + 1e-15; tt += 0.25e-9) {
    std::vector<std::string> row = {Table::fmtScaled(tt, 1e-9, 2)};
    for (const auto& n : nodes) {
      const Signal s = run.node(n);
      row.push_back(Table::fmt(interpLinear(s.time, s.value, tt), 3));
    }
    t.addRow(row);
  }
  t.print(std::cout);

  AsciiPlotOptions plot;
  plot.width = 96;
  plot.height = 8;
  plot.t_stop = 4e-9;
  std::cout << '\n' << plotNodes(run, nodes, plot);

  const std::string csv = std::string("fig5_timing_") + tag + ".csv";
  writeWaveformsCsv(csv, run, nodes);
  std::cout << "full waveforms written to " << csv << "\n";
}

}  // namespace

int main() {
  std::cout << "bench_fig5_timing_diagram: SS-TVS internal waveforms (paper Figure 5).\n"
               "Expected sequence per Section 3: in high -> node1 low, node2 at VDDO,\n"
               "ctrl charged, out low; in falls -> M1 (gate=ctrl) discharges node2,\n"
               "out rises to VDDO, ctrl partially discharges while M2 turns off.\n";
  runScenario("low_to_high", 0.8, 1.2);
  runScenario("high_to_low", 1.2, 0.8);
  return 0;
}
