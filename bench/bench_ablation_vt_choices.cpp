// Ablation of the paper's threshold-voltage assignments (Section 3):
// M4/M6 are high-VT "to reduce leakage currents"; M8 is low-VT "to
// ensure that ctrl can charge to a sufficiently large voltage value"
// (and to widen the translation range). Toggle each choice and measure.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace vls;
  using namespace vls::bench;
  std::cout << "bench_ablation_vt_choices: SS-TVS VT-assignment ablation\n"
               "(paper Section 3 rationale: HVT M4/M6 cut leakage; LVT M8 keeps\n"
               "the ctrl node high enough for M1 to discharge node2 quickly)\n";

  struct Variant {
    const char* name;
    bool m4_hvt, m6_hvt, m8_lvt;
  };
  const Variant variants[] = {
      {"paper (HVT M4/M6, LVT M8)", true, true, true},
      {"no HVT on M4", false, true, true},
      {"no HVT on M6", true, false, true},
      {"nominal-VT M8 (no LVT)", true, true, false},
      {"all nominal VT", false, false, false},
  };

  Table t({"Variant", "rise (ps) 0.8->1.2", "fall (ps)", "leak high (nA)", "leak low (nA)",
           "rise (ps) 1.2->0.8", "functional"});
  for (const Variant& v : variants) {
    HarnessConfig cfg;
    cfg.kind = ShifterKind::Sstvs;
    cfg.sstvs.m4_high_vt = v.m4_hvt;
    cfg.sstvs.m6_high_vt = v.m6_hvt;
    cfg.sstvs.m8_low_vt = v.m8_lvt;
    cfg.vddi = 0.8;
    cfg.vddo = 1.2;
    const ShifterMetrics up = measureShifter(cfg);
    cfg.vddi = 1.2;
    cfg.vddo = 0.8;
    const ShifterMetrics down = measureShifter(cfg);
    t.addRow({v.name, Table::fmtScaled(up.delay_rise, 1e-12, 1),
              Table::fmtScaled(up.delay_fall, 1e-12, 1),
              Table::fmtScaled(up.leakage_high, 1e-9, 3),
              Table::fmtScaled(up.leakage_low, 1e-9, 3),
              Table::fmtScaled(down.delay_rise, 1e-12, 1),
              (up.functional && down.functional) ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "Expected: removing HVT on M6 raises output-high leakage; removing the\n"
               "LVT on M8 lowers the stored ctrl voltage and slows the rising edge.\n"
               "Note: in our reconstruction M4 sits behind M5 (gate=node2, VGS=0 in\n"
               "the leaky state), so M5 blocks the stack and the M4 HVT choice is\n"
               "redundant -- an observable difference from the paper's (lost) exact\n"
               "Figure 4 stack ordering.\n";
  return 0;
}
