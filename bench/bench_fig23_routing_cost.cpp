// Figures 2/3 of the paper, quantified: the routing cost of interfacing
// the four-module multi-voltage system with conventional level shifters
// (extra supply rails), dual-polarity signalling (extra signal wires),
// or single-supply shifters (nothing extra).
#include <iostream>

#include "analysis/routing_cost.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace vls;
  using namespace vls::bench;
  const Flags flags(argc, argv);
  const int per_pair = flags.getInt("signals", 16);

  std::vector<ModuleSpec> modules;
  std::vector<SignalBundle> signals;
  paperFourModuleSystem(modules, signals, 2e-3, per_pair);
  const RoutingReport rep = compareRoutingCost(modules, signals);

  std::cout << "bench_fig23_routing_cost: the paper's 4-module system\n"
               "(0.8/1.0/1.2/1.4 V on a 2x2 mm floorplan, " << per_pair
            << " signals per directed pair)\n\n";
  Table t({"Interfacing strategy", "extra supply rails", "extra wires",
           "extra routing area (um^2)", "notes"});
  auto um2 = [](double m2) { return Table::fmtScaled(m2, 1e-12, 0); };
  t.addRow({"CVS (Figure 2)", std::to_string(rep.cvs_extra_rails), "0",
            um2(rep.cvs_supply_area), "source rails imported per receiver"});
  t.addRow({"dual-polarity signals", "0", std::to_string(rep.dual_extra_wires),
            um2(rep.dual_extra_area), "in + in_b per crossing signal"});
  t.addRow({"SS-VS / SS-TVS (Figure 3)", "0", "0", um2(rep.ssvs_extra_area),
            "destination supply only"});
  t.print(std::cout);

  std::cout << "\nBaseline signal wiring all strategies pay: "
            << Table::fmtScaled(rep.signal_area, 1e-12, 0) << " um^2 over "
            << Table::fmtScaled(rep.signal_wirelength, 1e-3, 2) << " mm of wire.\n";
  std::cout << "CVS supply overhead is "
            << Table::fmt(100.0 * rep.cvs_supply_area / rep.signal_area, 3)
            << "% of the signal routing area for this mesh (grows with rail width\n"
               "and domain count; DVS makes the import set worst-case ALL rails).\n";
  return 0;
}
