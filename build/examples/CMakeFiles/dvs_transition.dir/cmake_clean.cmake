file(REMOVE_RECURSE
  "CMakeFiles/dvs_transition.dir/dvs_transition.cpp.o"
  "CMakeFiles/dvs_transition.dir/dvs_transition.cpp.o.d"
  "dvs_transition"
  "dvs_transition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvs_transition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
