# Empty dependencies file for dvs_transition.
# This may be replaced when dependencies are built.
