file(REMOVE_RECURSE
  "CMakeFiles/lcff_pipeline.dir/lcff_pipeline.cpp.o"
  "CMakeFiles/lcff_pipeline.dir/lcff_pipeline.cpp.o.d"
  "lcff_pipeline"
  "lcff_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcff_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
