# Empty dependencies file for lcff_pipeline.
# This may be replaced when dependencies are built.
