file(REMOVE_RECURSE
  "CMakeFiles/analog_analyses.dir/analog_analyses.cpp.o"
  "CMakeFiles/analog_analyses.dir/analog_analyses.cpp.o.d"
  "analog_analyses"
  "analog_analyses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analog_analyses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
