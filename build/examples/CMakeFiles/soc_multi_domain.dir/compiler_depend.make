# Empty compiler generated dependencies file for soc_multi_domain.
# This may be replaced when dependencies are built.
