file(REMOVE_RECURSE
  "CMakeFiles/soc_multi_domain.dir/soc_multi_domain.cpp.o"
  "CMakeFiles/soc_multi_domain.dir/soc_multi_domain.cpp.o.d"
  "soc_multi_domain"
  "soc_multi_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_multi_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
