file(REMOVE_RECURSE
  "CMakeFiles/export_cells.dir/export_cells.cpp.o"
  "CMakeFiles/export_cells.dir/export_cells.cpp.o.d"
  "export_cells"
  "export_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
