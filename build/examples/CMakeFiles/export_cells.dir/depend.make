# Empty dependencies file for export_cells.
# This may be replaced when dependencies are built.
