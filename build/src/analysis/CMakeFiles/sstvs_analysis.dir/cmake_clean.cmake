file(REMOVE_RECURSE
  "CMakeFiles/sstvs_analysis.dir/area.cpp.o"
  "CMakeFiles/sstvs_analysis.dir/area.cpp.o.d"
  "CMakeFiles/sstvs_analysis.dir/corners.cpp.o"
  "CMakeFiles/sstvs_analysis.dir/corners.cpp.o.d"
  "CMakeFiles/sstvs_analysis.dir/measure.cpp.o"
  "CMakeFiles/sstvs_analysis.dir/measure.cpp.o.d"
  "CMakeFiles/sstvs_analysis.dir/monte_carlo.cpp.o"
  "CMakeFiles/sstvs_analysis.dir/monte_carlo.cpp.o.d"
  "CMakeFiles/sstvs_analysis.dir/routing_cost.cpp.o"
  "CMakeFiles/sstvs_analysis.dir/routing_cost.cpp.o.d"
  "CMakeFiles/sstvs_analysis.dir/sensitivity.cpp.o"
  "CMakeFiles/sstvs_analysis.dir/sensitivity.cpp.o.d"
  "CMakeFiles/sstvs_analysis.dir/shifter_harness.cpp.o"
  "CMakeFiles/sstvs_analysis.dir/shifter_harness.cpp.o.d"
  "CMakeFiles/sstvs_analysis.dir/static_margins.cpp.o"
  "CMakeFiles/sstvs_analysis.dir/static_margins.cpp.o.d"
  "CMakeFiles/sstvs_analysis.dir/sweep.cpp.o"
  "CMakeFiles/sstvs_analysis.dir/sweep.cpp.o.d"
  "libsstvs_analysis.a"
  "libsstvs_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstvs_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
