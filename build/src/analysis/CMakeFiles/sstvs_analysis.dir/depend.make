# Empty dependencies file for sstvs_analysis.
# This may be replaced when dependencies are built.
