
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/area.cpp" "src/analysis/CMakeFiles/sstvs_analysis.dir/area.cpp.o" "gcc" "src/analysis/CMakeFiles/sstvs_analysis.dir/area.cpp.o.d"
  "/root/repo/src/analysis/corners.cpp" "src/analysis/CMakeFiles/sstvs_analysis.dir/corners.cpp.o" "gcc" "src/analysis/CMakeFiles/sstvs_analysis.dir/corners.cpp.o.d"
  "/root/repo/src/analysis/measure.cpp" "src/analysis/CMakeFiles/sstvs_analysis.dir/measure.cpp.o" "gcc" "src/analysis/CMakeFiles/sstvs_analysis.dir/measure.cpp.o.d"
  "/root/repo/src/analysis/monte_carlo.cpp" "src/analysis/CMakeFiles/sstvs_analysis.dir/monte_carlo.cpp.o" "gcc" "src/analysis/CMakeFiles/sstvs_analysis.dir/monte_carlo.cpp.o.d"
  "/root/repo/src/analysis/routing_cost.cpp" "src/analysis/CMakeFiles/sstvs_analysis.dir/routing_cost.cpp.o" "gcc" "src/analysis/CMakeFiles/sstvs_analysis.dir/routing_cost.cpp.o.d"
  "/root/repo/src/analysis/sensitivity.cpp" "src/analysis/CMakeFiles/sstvs_analysis.dir/sensitivity.cpp.o" "gcc" "src/analysis/CMakeFiles/sstvs_analysis.dir/sensitivity.cpp.o.d"
  "/root/repo/src/analysis/shifter_harness.cpp" "src/analysis/CMakeFiles/sstvs_analysis.dir/shifter_harness.cpp.o" "gcc" "src/analysis/CMakeFiles/sstvs_analysis.dir/shifter_harness.cpp.o.d"
  "/root/repo/src/analysis/static_margins.cpp" "src/analysis/CMakeFiles/sstvs_analysis.dir/static_margins.cpp.o" "gcc" "src/analysis/CMakeFiles/sstvs_analysis.dir/static_margins.cpp.o.d"
  "/root/repo/src/analysis/sweep.cpp" "src/analysis/CMakeFiles/sstvs_analysis.dir/sweep.cpp.o" "gcc" "src/analysis/CMakeFiles/sstvs_analysis.dir/sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sstvs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cells/CMakeFiles/sstvs_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/sstvs_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/sstvs_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/sstvs_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/sstvs_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
