file(REMOVE_RECURSE
  "libsstvs_analysis.a"
)
