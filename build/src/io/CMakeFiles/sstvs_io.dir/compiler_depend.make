# Empty compiler generated dependencies file for sstvs_io.
# This may be replaced when dependencies are built.
