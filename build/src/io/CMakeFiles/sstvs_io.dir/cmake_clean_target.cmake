file(REMOVE_RECURSE
  "libsstvs_io.a"
)
