
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/ascii_plot.cpp" "src/io/CMakeFiles/sstvs_io.dir/ascii_plot.cpp.o" "gcc" "src/io/CMakeFiles/sstvs_io.dir/ascii_plot.cpp.o.d"
  "/root/repo/src/io/csv.cpp" "src/io/CMakeFiles/sstvs_io.dir/csv.cpp.o" "gcc" "src/io/CMakeFiles/sstvs_io.dir/csv.cpp.o.d"
  "/root/repo/src/io/json_writer.cpp" "src/io/CMakeFiles/sstvs_io.dir/json_writer.cpp.o" "gcc" "src/io/CMakeFiles/sstvs_io.dir/json_writer.cpp.o.d"
  "/root/repo/src/io/liberty_writer.cpp" "src/io/CMakeFiles/sstvs_io.dir/liberty_writer.cpp.o" "gcc" "src/io/CMakeFiles/sstvs_io.dir/liberty_writer.cpp.o.d"
  "/root/repo/src/io/netlist_parser.cpp" "src/io/CMakeFiles/sstvs_io.dir/netlist_parser.cpp.o" "gcc" "src/io/CMakeFiles/sstvs_io.dir/netlist_parser.cpp.o.d"
  "/root/repo/src/io/netlist_writer.cpp" "src/io/CMakeFiles/sstvs_io.dir/netlist_writer.cpp.o" "gcc" "src/io/CMakeFiles/sstvs_io.dir/netlist_writer.cpp.o.d"
  "/root/repo/src/io/table.cpp" "src/io/CMakeFiles/sstvs_io.dir/table.cpp.o" "gcc" "src/io/CMakeFiles/sstvs_io.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sstvs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/sstvs_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/sstvs_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/sstvs_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/sstvs_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
