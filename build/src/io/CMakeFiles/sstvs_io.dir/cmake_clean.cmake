file(REMOVE_RECURSE
  "CMakeFiles/sstvs_io.dir/ascii_plot.cpp.o"
  "CMakeFiles/sstvs_io.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/sstvs_io.dir/csv.cpp.o"
  "CMakeFiles/sstvs_io.dir/csv.cpp.o.d"
  "CMakeFiles/sstvs_io.dir/json_writer.cpp.o"
  "CMakeFiles/sstvs_io.dir/json_writer.cpp.o.d"
  "CMakeFiles/sstvs_io.dir/liberty_writer.cpp.o"
  "CMakeFiles/sstvs_io.dir/liberty_writer.cpp.o.d"
  "CMakeFiles/sstvs_io.dir/netlist_parser.cpp.o"
  "CMakeFiles/sstvs_io.dir/netlist_parser.cpp.o.d"
  "CMakeFiles/sstvs_io.dir/netlist_writer.cpp.o"
  "CMakeFiles/sstvs_io.dir/netlist_writer.cpp.o.d"
  "CMakeFiles/sstvs_io.dir/table.cpp.o"
  "CMakeFiles/sstvs_io.dir/table.cpp.o.d"
  "libsstvs_io.a"
  "libsstvs_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstvs_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
