file(REMOVE_RECURSE
  "CMakeFiles/sstvs_devices.dir/bjt.cpp.o"
  "CMakeFiles/sstvs_devices.dir/bjt.cpp.o.d"
  "CMakeFiles/sstvs_devices.dir/diode.cpp.o"
  "CMakeFiles/sstvs_devices.dir/diode.cpp.o.d"
  "CMakeFiles/sstvs_devices.dir/model_library.cpp.o"
  "CMakeFiles/sstvs_devices.dir/model_library.cpp.o.d"
  "CMakeFiles/sstvs_devices.dir/mos_model.cpp.o"
  "CMakeFiles/sstvs_devices.dir/mos_model.cpp.o.d"
  "CMakeFiles/sstvs_devices.dir/mosfet.cpp.o"
  "CMakeFiles/sstvs_devices.dir/mosfet.cpp.o.d"
  "CMakeFiles/sstvs_devices.dir/passive.cpp.o"
  "CMakeFiles/sstvs_devices.dir/passive.cpp.o.d"
  "CMakeFiles/sstvs_devices.dir/sources.cpp.o"
  "CMakeFiles/sstvs_devices.dir/sources.cpp.o.d"
  "CMakeFiles/sstvs_devices.dir/waveform.cpp.o"
  "CMakeFiles/sstvs_devices.dir/waveform.cpp.o.d"
  "libsstvs_devices.a"
  "libsstvs_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstvs_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
