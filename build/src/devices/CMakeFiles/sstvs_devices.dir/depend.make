# Empty dependencies file for sstvs_devices.
# This may be replaced when dependencies are built.
