
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/devices/bjt.cpp" "src/devices/CMakeFiles/sstvs_devices.dir/bjt.cpp.o" "gcc" "src/devices/CMakeFiles/sstvs_devices.dir/bjt.cpp.o.d"
  "/root/repo/src/devices/diode.cpp" "src/devices/CMakeFiles/sstvs_devices.dir/diode.cpp.o" "gcc" "src/devices/CMakeFiles/sstvs_devices.dir/diode.cpp.o.d"
  "/root/repo/src/devices/model_library.cpp" "src/devices/CMakeFiles/sstvs_devices.dir/model_library.cpp.o" "gcc" "src/devices/CMakeFiles/sstvs_devices.dir/model_library.cpp.o.d"
  "/root/repo/src/devices/mos_model.cpp" "src/devices/CMakeFiles/sstvs_devices.dir/mos_model.cpp.o" "gcc" "src/devices/CMakeFiles/sstvs_devices.dir/mos_model.cpp.o.d"
  "/root/repo/src/devices/mosfet.cpp" "src/devices/CMakeFiles/sstvs_devices.dir/mosfet.cpp.o" "gcc" "src/devices/CMakeFiles/sstvs_devices.dir/mosfet.cpp.o.d"
  "/root/repo/src/devices/passive.cpp" "src/devices/CMakeFiles/sstvs_devices.dir/passive.cpp.o" "gcc" "src/devices/CMakeFiles/sstvs_devices.dir/passive.cpp.o.d"
  "/root/repo/src/devices/sources.cpp" "src/devices/CMakeFiles/sstvs_devices.dir/sources.cpp.o" "gcc" "src/devices/CMakeFiles/sstvs_devices.dir/sources.cpp.o.d"
  "/root/repo/src/devices/waveform.cpp" "src/devices/CMakeFiles/sstvs_devices.dir/waveform.cpp.o" "gcc" "src/devices/CMakeFiles/sstvs_devices.dir/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/sstvs_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/sstvs_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/sstvs_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
