file(REMOVE_RECURSE
  "libsstvs_devices.a"
)
