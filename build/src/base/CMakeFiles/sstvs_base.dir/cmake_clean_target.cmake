file(REMOVE_RECURSE
  "libsstvs_base.a"
)
