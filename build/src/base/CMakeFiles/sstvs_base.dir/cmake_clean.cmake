file(REMOVE_RECURSE
  "CMakeFiles/sstvs_base.dir/error.cpp.o"
  "CMakeFiles/sstvs_base.dir/error.cpp.o.d"
  "CMakeFiles/sstvs_base.dir/logging.cpp.o"
  "CMakeFiles/sstvs_base.dir/logging.cpp.o.d"
  "CMakeFiles/sstvs_base.dir/string_util.cpp.o"
  "CMakeFiles/sstvs_base.dir/string_util.cpp.o.d"
  "libsstvs_base.a"
  "libsstvs_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstvs_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
