# Empty dependencies file for sstvs_base.
# This may be replaced when dependencies are built.
