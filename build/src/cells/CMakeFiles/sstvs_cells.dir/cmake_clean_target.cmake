file(REMOVE_RECURSE
  "libsstvs_cells.a"
)
