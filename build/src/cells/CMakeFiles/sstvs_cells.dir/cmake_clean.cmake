file(REMOVE_RECURSE
  "CMakeFiles/sstvs_cells.dir/gates.cpp.o"
  "CMakeFiles/sstvs_cells.dir/gates.cpp.o.d"
  "CMakeFiles/sstvs_cells.dir/interconnect.cpp.o"
  "CMakeFiles/sstvs_cells.dir/interconnect.cpp.o.d"
  "CMakeFiles/sstvs_cells.dir/lcff.cpp.o"
  "CMakeFiles/sstvs_cells.dir/lcff.cpp.o.d"
  "CMakeFiles/sstvs_cells.dir/level_shifters.cpp.o"
  "CMakeFiles/sstvs_cells.dir/level_shifters.cpp.o.d"
  "CMakeFiles/sstvs_cells.dir/related_work.cpp.o"
  "CMakeFiles/sstvs_cells.dir/related_work.cpp.o.d"
  "CMakeFiles/sstvs_cells.dir/sstvs.cpp.o"
  "CMakeFiles/sstvs_cells.dir/sstvs.cpp.o.d"
  "libsstvs_cells.a"
  "libsstvs_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstvs_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
