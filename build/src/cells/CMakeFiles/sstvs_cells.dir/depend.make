# Empty dependencies file for sstvs_cells.
# This may be replaced when dependencies are built.
