
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cells/gates.cpp" "src/cells/CMakeFiles/sstvs_cells.dir/gates.cpp.o" "gcc" "src/cells/CMakeFiles/sstvs_cells.dir/gates.cpp.o.d"
  "/root/repo/src/cells/interconnect.cpp" "src/cells/CMakeFiles/sstvs_cells.dir/interconnect.cpp.o" "gcc" "src/cells/CMakeFiles/sstvs_cells.dir/interconnect.cpp.o.d"
  "/root/repo/src/cells/lcff.cpp" "src/cells/CMakeFiles/sstvs_cells.dir/lcff.cpp.o" "gcc" "src/cells/CMakeFiles/sstvs_cells.dir/lcff.cpp.o.d"
  "/root/repo/src/cells/level_shifters.cpp" "src/cells/CMakeFiles/sstvs_cells.dir/level_shifters.cpp.o" "gcc" "src/cells/CMakeFiles/sstvs_cells.dir/level_shifters.cpp.o.d"
  "/root/repo/src/cells/related_work.cpp" "src/cells/CMakeFiles/sstvs_cells.dir/related_work.cpp.o" "gcc" "src/cells/CMakeFiles/sstvs_cells.dir/related_work.cpp.o.d"
  "/root/repo/src/cells/sstvs.cpp" "src/cells/CMakeFiles/sstvs_cells.dir/sstvs.cpp.o" "gcc" "src/cells/CMakeFiles/sstvs_cells.dir/sstvs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/devices/CMakeFiles/sstvs_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/sstvs_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/sstvs_base.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/sstvs_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
