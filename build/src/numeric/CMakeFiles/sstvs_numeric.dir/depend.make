# Empty dependencies file for sstvs_numeric.
# This may be replaced when dependencies are built.
