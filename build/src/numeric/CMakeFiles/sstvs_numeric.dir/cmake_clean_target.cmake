file(REMOVE_RECURSE
  "libsstvs_numeric.a"
)
