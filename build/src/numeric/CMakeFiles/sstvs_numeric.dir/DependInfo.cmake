
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numeric/dense_matrix.cpp" "src/numeric/CMakeFiles/sstvs_numeric.dir/dense_matrix.cpp.o" "gcc" "src/numeric/CMakeFiles/sstvs_numeric.dir/dense_matrix.cpp.o.d"
  "/root/repo/src/numeric/interpolation.cpp" "src/numeric/CMakeFiles/sstvs_numeric.dir/interpolation.cpp.o" "gcc" "src/numeric/CMakeFiles/sstvs_numeric.dir/interpolation.cpp.o.d"
  "/root/repo/src/numeric/lu_dense.cpp" "src/numeric/CMakeFiles/sstvs_numeric.dir/lu_dense.cpp.o" "gcc" "src/numeric/CMakeFiles/sstvs_numeric.dir/lu_dense.cpp.o.d"
  "/root/repo/src/numeric/lu_sparse.cpp" "src/numeric/CMakeFiles/sstvs_numeric.dir/lu_sparse.cpp.o" "gcc" "src/numeric/CMakeFiles/sstvs_numeric.dir/lu_sparse.cpp.o.d"
  "/root/repo/src/numeric/rng.cpp" "src/numeric/CMakeFiles/sstvs_numeric.dir/rng.cpp.o" "gcc" "src/numeric/CMakeFiles/sstvs_numeric.dir/rng.cpp.o.d"
  "/root/repo/src/numeric/sparse_matrix.cpp" "src/numeric/CMakeFiles/sstvs_numeric.dir/sparse_matrix.cpp.o" "gcc" "src/numeric/CMakeFiles/sstvs_numeric.dir/sparse_matrix.cpp.o.d"
  "/root/repo/src/numeric/statistics.cpp" "src/numeric/CMakeFiles/sstvs_numeric.dir/statistics.cpp.o" "gcc" "src/numeric/CMakeFiles/sstvs_numeric.dir/statistics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/sstvs_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
