file(REMOVE_RECURSE
  "CMakeFiles/sstvs_numeric.dir/dense_matrix.cpp.o"
  "CMakeFiles/sstvs_numeric.dir/dense_matrix.cpp.o.d"
  "CMakeFiles/sstvs_numeric.dir/interpolation.cpp.o"
  "CMakeFiles/sstvs_numeric.dir/interpolation.cpp.o.d"
  "CMakeFiles/sstvs_numeric.dir/lu_dense.cpp.o"
  "CMakeFiles/sstvs_numeric.dir/lu_dense.cpp.o.d"
  "CMakeFiles/sstvs_numeric.dir/lu_sparse.cpp.o"
  "CMakeFiles/sstvs_numeric.dir/lu_sparse.cpp.o.d"
  "CMakeFiles/sstvs_numeric.dir/rng.cpp.o"
  "CMakeFiles/sstvs_numeric.dir/rng.cpp.o.d"
  "CMakeFiles/sstvs_numeric.dir/sparse_matrix.cpp.o"
  "CMakeFiles/sstvs_numeric.dir/sparse_matrix.cpp.o.d"
  "CMakeFiles/sstvs_numeric.dir/statistics.cpp.o"
  "CMakeFiles/sstvs_numeric.dir/statistics.cpp.o.d"
  "libsstvs_numeric.a"
  "libsstvs_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstvs_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
