# Empty dependencies file for sstvs_circuit.
# This may be replaced when dependencies are built.
