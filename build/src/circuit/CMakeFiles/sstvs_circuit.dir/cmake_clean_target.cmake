file(REMOVE_RECURSE
  "libsstvs_circuit.a"
)
