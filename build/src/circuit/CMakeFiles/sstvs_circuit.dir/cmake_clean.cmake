file(REMOVE_RECURSE
  "CMakeFiles/sstvs_circuit.dir/circuit.cpp.o"
  "CMakeFiles/sstvs_circuit.dir/circuit.cpp.o.d"
  "CMakeFiles/sstvs_circuit.dir/device.cpp.o"
  "CMakeFiles/sstvs_circuit.dir/device.cpp.o.d"
  "CMakeFiles/sstvs_circuit.dir/mna.cpp.o"
  "CMakeFiles/sstvs_circuit.dir/mna.cpp.o.d"
  "libsstvs_circuit.a"
  "libsstvs_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstvs_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
