
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/circuit.cpp" "src/circuit/CMakeFiles/sstvs_circuit.dir/circuit.cpp.o" "gcc" "src/circuit/CMakeFiles/sstvs_circuit.dir/circuit.cpp.o.d"
  "/root/repo/src/circuit/device.cpp" "src/circuit/CMakeFiles/sstvs_circuit.dir/device.cpp.o" "gcc" "src/circuit/CMakeFiles/sstvs_circuit.dir/device.cpp.o.d"
  "/root/repo/src/circuit/mna.cpp" "src/circuit/CMakeFiles/sstvs_circuit.dir/mna.cpp.o" "gcc" "src/circuit/CMakeFiles/sstvs_circuit.dir/mna.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/sstvs_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/sstvs_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
