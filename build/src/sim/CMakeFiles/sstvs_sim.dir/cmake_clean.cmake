file(REMOVE_RECURSE
  "CMakeFiles/sstvs_sim.dir/ac.cpp.o"
  "CMakeFiles/sstvs_sim.dir/ac.cpp.o.d"
  "CMakeFiles/sstvs_sim.dir/noise.cpp.o"
  "CMakeFiles/sstvs_sim.dir/noise.cpp.o.d"
  "CMakeFiles/sstvs_sim.dir/result.cpp.o"
  "CMakeFiles/sstvs_sim.dir/result.cpp.o.d"
  "CMakeFiles/sstvs_sim.dir/simulator.cpp.o"
  "CMakeFiles/sstvs_sim.dir/simulator.cpp.o.d"
  "libsstvs_sim.a"
  "libsstvs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstvs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
