
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/ac.cpp" "src/sim/CMakeFiles/sstvs_sim.dir/ac.cpp.o" "gcc" "src/sim/CMakeFiles/sstvs_sim.dir/ac.cpp.o.d"
  "/root/repo/src/sim/noise.cpp" "src/sim/CMakeFiles/sstvs_sim.dir/noise.cpp.o" "gcc" "src/sim/CMakeFiles/sstvs_sim.dir/noise.cpp.o.d"
  "/root/repo/src/sim/result.cpp" "src/sim/CMakeFiles/sstvs_sim.dir/result.cpp.o" "gcc" "src/sim/CMakeFiles/sstvs_sim.dir/result.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/sstvs_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/sstvs_sim.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/devices/CMakeFiles/sstvs_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/sstvs_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/sstvs_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/sstvs_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
