# Empty dependencies file for sstvs_sim.
# This may be replaced when dependencies are built.
