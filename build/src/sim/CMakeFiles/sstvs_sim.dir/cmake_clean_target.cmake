file(REMOVE_RECURSE
  "libsstvs_sim.a"
)
