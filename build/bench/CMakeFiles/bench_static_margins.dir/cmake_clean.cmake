file(REMOVE_RECURSE
  "CMakeFiles/bench_static_margins.dir/bench_static_margins.cpp.o"
  "CMakeFiles/bench_static_margins.dir/bench_static_margins.cpp.o.d"
  "bench_static_margins"
  "bench_static_margins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_static_margins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
