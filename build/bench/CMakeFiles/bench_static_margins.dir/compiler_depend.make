# Empty compiler generated dependencies file for bench_static_margins.
# This may be replaced when dependencies are built.
