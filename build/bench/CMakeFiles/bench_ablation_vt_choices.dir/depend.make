# Empty dependencies file for bench_ablation_vt_choices.
# This may be replaced when dependencies are built.
