file(REMOVE_RECURSE
  "CMakeFiles/bench_temperature_sweep.dir/bench_temperature_sweep.cpp.o"
  "CMakeFiles/bench_temperature_sweep.dir/bench_temperature_sweep.cpp.o.d"
  "bench_temperature_sweep"
  "bench_temperature_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_temperature_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
