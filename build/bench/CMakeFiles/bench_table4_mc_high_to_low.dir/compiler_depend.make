# Empty compiler generated dependencies file for bench_table4_mc_high_to_low.
# This may be replaced when dependencies are built.
