file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_mc_high_to_low.dir/bench_table4_mc_high_to_low.cpp.o"
  "CMakeFiles/bench_table4_mc_high_to_low.dir/bench_table4_mc_high_to_low.cpp.o.d"
  "bench_table4_mc_high_to_low"
  "bench_table4_mc_high_to_low.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_mc_high_to_low.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
