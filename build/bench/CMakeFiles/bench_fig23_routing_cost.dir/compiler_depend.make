# Empty compiler generated dependencies file for bench_fig23_routing_cost.
# This may be replaced when dependencies are built.
