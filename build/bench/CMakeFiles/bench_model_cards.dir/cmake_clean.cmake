file(REMOVE_RECURSE
  "CMakeFiles/bench_model_cards.dir/bench_model_cards.cpp.o"
  "CMakeFiles/bench_model_cards.dir/bench_model_cards.cpp.o.d"
  "bench_model_cards"
  "bench_model_cards.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_cards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
