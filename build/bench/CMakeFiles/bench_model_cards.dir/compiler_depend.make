# Empty compiler generated dependencies file for bench_model_cards.
# This may be replaced when dependencies are built.
