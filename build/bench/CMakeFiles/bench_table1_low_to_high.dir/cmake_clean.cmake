file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_low_to_high.dir/bench_table1_low_to_high.cpp.o"
  "CMakeFiles/bench_table1_low_to_high.dir/bench_table1_low_to_high.cpp.o.d"
  "bench_table1_low_to_high"
  "bench_table1_low_to_high.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_low_to_high.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
