# Empty compiler generated dependencies file for bench_table1_low_to_high.
# This may be replaced when dependencies are built.
