# Empty dependencies file for bench_corners.
# This may be replaced when dependencies are built.
