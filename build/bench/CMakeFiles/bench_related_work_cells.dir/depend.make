# Empty dependencies file for bench_related_work_cells.
# This may be replaced when dependencies are built.
