file(REMOVE_RECURSE
  "CMakeFiles/bench_related_work_cells.dir/bench_related_work_cells.cpp.o"
  "CMakeFiles/bench_related_work_cells.dir/bench_related_work_cells.cpp.o.d"
  "bench_related_work_cells"
  "bench_related_work_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_related_work_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
