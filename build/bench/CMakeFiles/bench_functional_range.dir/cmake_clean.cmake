file(REMOVE_RECURSE
  "CMakeFiles/bench_functional_range.dir/bench_functional_range.cpp.o"
  "CMakeFiles/bench_functional_range.dir/bench_functional_range.cpp.o.d"
  "bench_functional_range"
  "bench_functional_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_functional_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
