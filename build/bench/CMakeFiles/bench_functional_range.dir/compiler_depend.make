# Empty compiler generated dependencies file for bench_functional_range.
# This may be replaced when dependencies are built.
