# Empty compiler generated dependencies file for bench_table3_mc_low_to_high.
# This may be replaced when dependencies are built.
