# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_base[1]_include.cmake")
include("/root/repo/build/tests/test_numeric[1]_include.cmake")
include("/root/repo/build/tests/test_circuit[1]_include.cmake")
include("/root/repo/build/tests/test_devices[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_cells[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
