file(REMOVE_RECURSE
  "CMakeFiles/test_devices.dir/devices/bjt_test.cpp.o"
  "CMakeFiles/test_devices.dir/devices/bjt_test.cpp.o.d"
  "CMakeFiles/test_devices.dir/devices/diode_test.cpp.o"
  "CMakeFiles/test_devices.dir/devices/diode_test.cpp.o.d"
  "CMakeFiles/test_devices.dir/devices/model_library_test.cpp.o"
  "CMakeFiles/test_devices.dir/devices/model_library_test.cpp.o.d"
  "CMakeFiles/test_devices.dir/devices/mosfet_property_test.cpp.o"
  "CMakeFiles/test_devices.dir/devices/mosfet_property_test.cpp.o.d"
  "CMakeFiles/test_devices.dir/devices/mosfet_test.cpp.o"
  "CMakeFiles/test_devices.dir/devices/mosfet_test.cpp.o.d"
  "CMakeFiles/test_devices.dir/devices/passive_test.cpp.o"
  "CMakeFiles/test_devices.dir/devices/passive_test.cpp.o.d"
  "CMakeFiles/test_devices.dir/devices/sources_test.cpp.o"
  "CMakeFiles/test_devices.dir/devices/sources_test.cpp.o.d"
  "CMakeFiles/test_devices.dir/devices/waveform_test.cpp.o"
  "CMakeFiles/test_devices.dir/devices/waveform_test.cpp.o.d"
  "test_devices"
  "test_devices.pdb"
  "test_devices[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
