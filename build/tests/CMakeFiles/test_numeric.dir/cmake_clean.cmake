file(REMOVE_RECURSE
  "CMakeFiles/test_numeric.dir/numeric/dense_lu_test.cpp.o"
  "CMakeFiles/test_numeric.dir/numeric/dense_lu_test.cpp.o.d"
  "CMakeFiles/test_numeric.dir/numeric/dual_test.cpp.o"
  "CMakeFiles/test_numeric.dir/numeric/dual_test.cpp.o.d"
  "CMakeFiles/test_numeric.dir/numeric/interpolation_test.cpp.o"
  "CMakeFiles/test_numeric.dir/numeric/interpolation_test.cpp.o.d"
  "CMakeFiles/test_numeric.dir/numeric/rng_test.cpp.o"
  "CMakeFiles/test_numeric.dir/numeric/rng_test.cpp.o.d"
  "CMakeFiles/test_numeric.dir/numeric/sparse_lu_test.cpp.o"
  "CMakeFiles/test_numeric.dir/numeric/sparse_lu_test.cpp.o.d"
  "CMakeFiles/test_numeric.dir/numeric/statistics_test.cpp.o"
  "CMakeFiles/test_numeric.dir/numeric/statistics_test.cpp.o.d"
  "test_numeric"
  "test_numeric.pdb"
  "test_numeric[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
