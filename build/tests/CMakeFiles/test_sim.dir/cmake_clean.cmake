file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/ac_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/ac_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/dc_sweep_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/dc_sweep_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/noise_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/noise_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/op_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/op_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/transient_accuracy_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/transient_accuracy_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/transient_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/transient_test.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
