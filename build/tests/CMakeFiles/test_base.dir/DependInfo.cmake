
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/base/error_test.cpp" "tests/CMakeFiles/test_base.dir/base/error_test.cpp.o" "gcc" "tests/CMakeFiles/test_base.dir/base/error_test.cpp.o.d"
  "/root/repo/tests/base/string_util_test.cpp" "tests/CMakeFiles/test_base.dir/base/string_util_test.cpp.o" "gcc" "tests/CMakeFiles/test_base.dir/base/string_util_test.cpp.o.d"
  "/root/repo/tests/base/units_test.cpp" "tests/CMakeFiles/test_base.dir/base/units_test.cpp.o" "gcc" "tests/CMakeFiles/test_base.dir/base/units_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/sstvs_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/cells/CMakeFiles/sstvs_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/sstvs_io.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sstvs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/sstvs_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/sstvs_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/sstvs_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/sstvs_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
