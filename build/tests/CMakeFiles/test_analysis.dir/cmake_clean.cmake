file(REMOVE_RECURSE
  "CMakeFiles/test_analysis.dir/analysis/area_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/area_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/corners_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/corners_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/harness_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/harness_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/measure_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/measure_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/monte_carlo_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/monte_carlo_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/routing_cost_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/routing_cost_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/sensitivity_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/sensitivity_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/static_margins_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/static_margins_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/sweep_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/sweep_test.cpp.o.d"
  "test_analysis"
  "test_analysis.pdb"
  "test_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
